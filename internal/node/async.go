package node

import (
	"fmt"
	"sync/atomic"
	"time"

	"syncstamp/internal/obs"
	tssync "syncstamp/internal/sync"
	"syncstamp/internal/wire"
)

// Asynchronous-substrate mode (RecoveryConfig.Async): the α-style
// synchronizer from internal/sync threaded through the runtime. Loss stops
// being an injected fault and becomes the operating assumption: every
// SYN/ACK toward a peer piggybacks a cumulative safe counter (the round
// acknowledgment of the synchronizer), the retransmission timer adapts to a
// per-peer Jacobson RTT estimate instead of the fixed min/max backoff, and
// a per-peer health FSM (healthy → degraded → suspect → excluded) lets the
// OnPeerLoss policy act on suspicion — an unresponsive peer — rather than
// waiting for a connection to die.
//
// The mode changes when frames move, never what the stamps say: under every
// async schedule the collected trace must equal the synchronous oracle's.
// That is also why none of the state here reaches the tracer or the flight
// recorder — retransmission timing is wall-clock nondeterminism, and the
// exported event streams are contractually byte-identical across runs. The
// synchronizer surfaces through metrics and RunInfo only.

// RTTStats is RunInfo's per-peer view of the RTT estimator and the health
// monitor in async mode. P50NS/P99NS are quantile upper bounds from the
// peer's RTT histogram (zero with obs disabled); the rest comes from the
// estimator and monitor directly.
type RTTStats struct {
	SRTTNS     int64
	RTONS      int64
	P50NS      int64
	P99NS      int64
	Samples    int64
	Spurious   int64
	Suspicions int64
}

// asyncOn reports whether the synchronizer is active.
func (n *Node) asyncOn() bool { return n.coord != nil }

// initAsync builds the synchronizer state after the Node's sizes are known.
// Called from New, before any connection exists.
func (n *Node) initAsync() {
	cfg := *n.rec.Async
	// The synchronizer's jitter seed doubles as the per-node identity salt,
	// so two nodes of one run never share a jitter stream.
	cfg.Seed = cfg.Seed*1_000_003 + int64(n.cfg.Node)
	n.coord = tssync.NewCoordinator(cfg, n.nodes, n.cfg.Node)
	n.safeTx = make([]atomic.Uint64, n.nodes)
	n.safeRx = make([]uint64, n.nodes)
	n.suspectWatch = make([]bool, n.nodes)
	if r := n.cfg.Obs.Registry(); r != nil {
		n.peerRTT = make([]*obs.Histogram, n.nodes)
		n.peerHealth = make([]*obs.Gauge, n.nodes)
		for j := 0; j < n.nodes; j++ {
			if j == n.cfg.Node {
				continue
			}
			n.peerRTT[j] = r.Histogram(obs.PeerMetric(obs.MetricPeerRTTNS, j), obs.LatencyEdges)
			n.peerHealth[j] = r.Gauge(obs.PeerMetric(obs.MetricPeerHealth, j))
		}
	}
}

// safeFor returns the safe counter to piggyback on a frame toward a peer
// node: the count of rendezvous this node has fully committed with it.
func (n *Node) safeFor(peer int) uint64 {
	if !n.asyncOn() || peer < 0 || peer >= len(n.safeTx) {
		return 0
	}
	return n.safeTx[peer].Load()
}

// noteSafe advances the safe counter toward a peer node by one committed
// rendezvous. The new value rides every subsequent SYN/ACK to that peer.
func (n *Node) noteSafe(peer int) {
	if !n.asyncOn() || peer < 0 || peer >= len(n.safeTx) {
		return
	}
	n.safeTx[peer].Add(1)
}

// noteAlive is the synchronizer's receive hook, called by the read loop for
// every frame a peer delivers: the frame itself is liveness evidence, and a
// SYN/ACK's Safe field advances our view of the peer's committed rounds.
// Evidence heals the health FSM (suspect → healthy on a late ACK); the
// healed state is mirrored into the health gauge.
func (n *Node) noteAlive(peer int, f *wire.Frame) {
	if !n.asyncOn() {
		return
	}
	if f.Kind == wire.KindSyn || f.Kind == wire.KindAck {
		n.mu.Lock()
		if f.Safe > n.safeRx[peer] {
			n.safeRx[peer] = f.Safe
		}
		n.mu.Unlock()
	}
	p := n.coord.Peer(peer)
	if p == nil {
		return
	}
	if st, changed := p.OnEvidence(); changed {
		n.setHealthGauge(peer, st)
	}
}

// noteTimeout is the synchronizer's timeout hook, called by a parked sender
// each time a retransmission interval expires unanswered. A transition into
// suspect arms the degradation policy.
func (n *Node) noteTimeout(peer int) {
	p := n.coord.Peer(peer)
	if p == nil {
		return
	}
	st, changed := p.OnTimeout()
	if !changed {
		return
	}
	n.setHealthGauge(peer, st)
	if st == tssync.Suspect {
		n.noteSuspect(peer)
	}
}

// noteSuspect reacts to a peer turning suspect: count it, then let the
// degradation policy have it. Abort fails the run on suspicion itself;
// Wait and Exclude grant the peer the reconnect window to produce liveness
// evidence, enforced by a watchdog goroutine.
func (n *Node) noteSuspect(peer int) {
	n.suspicions.Add(1)
	n.ins.Suspicions.Add(1)
	if n.rec.OnPeerLoss == PeerLossAbort {
		n.fail(fmt.Errorf("node %d: node %d suspect after consecutive timeouts", n.cfg.Node, peer))
		return
	}
	n.mu.Lock()
	skip := n.suspectWatch[peer] || n.excluded[peer]
	if !skip {
		n.suspectWatch[peer] = true
	}
	n.mu.Unlock()
	if skip || n.stopped() {
		return
	}
	n.recoveryWG.Add(1)
	go n.watchSuspect(peer)
}

// watchSuspect grants a suspect peer the reconnect window, then applies the
// peer-loss policy if no liveness evidence healed it: exclude removes the
// peer from the run (its components freeze, parked rendezvous wake with
// ErrPeerLost), wait fails the run — the same window semantics recoverPeer
// applies to hard connection loss, now driven purely by unresponsiveness.
func (n *Node) watchSuspect(peer int) {
	defer n.recoveryWG.Done()
	timer := time.NewTimer(n.rec.ReconnectWindow)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-n.stop:
		n.mu.Lock()
		n.suspectWatch[peer] = false
		n.mu.Unlock()
		return
	}
	n.mu.Lock()
	n.suspectWatch[peer] = false
	n.mu.Unlock()
	p := n.coord.Peer(peer)
	if p == nil || p.State() != tssync.Suspect || n.stopped() || n.isExcluded(peer) {
		return // healed, already excluded, or the run is over
	}
	switch n.rec.OnPeerLoss {
	case PeerLossExclude:
		p.Exclude()
		n.setHealthGauge(peer, tssync.Excluded)
		n.excludePeer(peer)
	default:
		n.fail(fmt.Errorf("node %d: node %d suspect for %v with no liveness evidence", n.cfg.Node, peer, n.rec.ReconnectWindow))
	}
}

// setHealthGauge mirrors a health state into the peer's /metrics gauge.
func (n *Node) setHealthGauge(peer int, st tssync.State) {
	if n.peerHealth == nil || peer < 0 || peer >= len(n.peerHealth) {
		return
	}
	n.peerHealth[peer].Set(int64(st))
}

// asyncInfo fills RunInfo's synchronizer fields at end of run.
func (n *Node) asyncInfo(info *RunInfo) {
	if !n.asyncOn() {
		return
	}
	info.Spurious = n.spurious.Load()
	info.Suspicions = n.suspicions.Load()
	info.PeerRTT = make(map[int]RTTStats, n.nodes-1)
	info.PeerHealth = make(map[int]string, n.nodes-1)
	for j := 0; j < n.nodes; j++ {
		p := n.coord.Peer(j)
		if p == nil {
			continue
		}
		es := p.Estimator().Stats()
		hs := p.Monitor().Stats()
		st := RTTStats{
			SRTTNS:     es.SRTT.Nanoseconds(),
			RTONS:      es.RTO.Nanoseconds(),
			Samples:    es.Samples,
			Spurious:   es.Spurious,
			Suspicions: hs.Suspicions,
		}
		if n.peerRTT != nil && n.peerRTT[j] != nil {
			hsnap := n.peerRTT[j].Snapshot()
			st.P50NS = hsnap.Quantile(0.50)
			st.P99NS = hsnap.Quantile(0.99)
		}
		info.PeerRTT[j] = st
		info.PeerHealth[j] = hs.State.String()
		n.setHealthGauge(j, hs.State)
	}
}
