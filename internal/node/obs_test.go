package node

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/obs"
	"syncstamp/internal/vector"
	"syncstamp/internal/wire"
)

// exportClusterJSONL runs a fixed two-node computation over the Loop fabric
// with per-node observability (fake clocks) and returns each node's JSONL
// trace export.
func exportClusterJSONL(t *testing.T) [][]byte {
	t.Helper()
	dec := decomp.Approximate(graph.Path(2))
	placement := []int{0, 1}
	l := NewLoop(2)
	oses := []*obs.Obs{obs.New(), obs.New()}
	for _, o := range oses {
		o.Clock = &obs.Manual{}
	}
	programs := map[int]func(*Process) error{
		0: func(p *Process) error {
			if _, err := p.Send(1); err != nil {
				return err
			}
			_, err := p.RecvFrom(1)
			return err
		},
		1: func(p *Process) error {
			if _, err := p.RecvFrom(0); err != nil {
				return err
			}
			p.Internal("done")
			_, err := p.Send(0)
			return err
		},
	}
	outs := make([][]byte, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := New(Config{Node: i, Placement: placement, Dec: dec, Obs: oses[i]}, l.Transport(i))
			if err != nil {
				errs[i] = err
				return
			}
			defer n.Close()
			info, err := n.Run(programs)
			if err != nil {
				errs[i] = err
				return
			}
			if info.Dropped != 0 {
				t.Errorf("node %d dropped %d frames in a clean run", i, info.Dropped)
			}
			if info.Frames.Frames[wire.KindSyn] != 1 || info.Frames.Frames[wire.KindAck] != 1 {
				t.Errorf("node %d frame stats: %+v", i, info.Frames)
			}
			meta, err := obs.NewMeta(i, dec)
			if err != nil {
				errs[i] = err
				return
			}
			meta.Frames = FrameMap(info.Frames)
			meta.Overhead = &info.Overhead
			var buf bytes.Buffer
			if err := obs.WriteJSONL(&buf, meta, oses[i].Tracer.Events()); err != nil {
				errs[i] = err
				return
			}
			outs[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return outs
}

// TestNodeObsDeterministicJSONL: two full cluster runs (fresh fabrics, fresh
// interleavings) export byte-identical per-node JSONL, wire accounting
// included.
func TestNodeObsDeterministicJSONL(t *testing.T) {
	leakCheck(t)
	a := exportClusterJSONL(t)
	b := exportClusterJSONL(t)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("node %d JSONL differs across runs:\n%s\n---\n%s", i, a[i], b[i])
		}
		if len(a[i]) == 0 {
			t.Errorf("node %d exported an empty trace", i)
		}
	}
}

// TestReadLoopCountsDroppedFrames feeds a data connection a stray INTERNAL
// frame and an ACK no send is waiting for: both are counted and dropped, the
// reader survives to the BYE, and the counter surfaces in the registry.
func TestReadLoopCountsDroppedFrames(t *testing.T) {
	leakCheck(t)
	dec := decomp.Approximate(graph.Path(2))
	o := obs.New()
	l := NewLoop(2)
	n, err := New(Config{Node: 0, Placement: []int{0, 1}, Dec: dec, Obs: o}, l.Transport(0))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	pc := &peerConn{n: n, node: 1, c: server, dec: wire.NewDecoder(server, dec.D()), enc: wire.NewEncoder(server, dec.D())}
	n.readersWG.Add(1)
	go n.readLoop(pc)

	enc := wire.NewEncoder(client, dec.D())
	for _, f := range []*wire.Frame{
		{Kind: wire.KindInternal, Proc: 0, Note: "stray"},
		{Kind: wire.KindAck, From: 1, To: 0, Vec: vector.New(dec.D())},
		{Kind: wire.KindBye},
	} {
		if err := enc.Encode(f); err != nil {
			t.Fatal(err)
		}
	}
	n.readersWG.Wait()

	if got := n.DroppedFrames(); got != 2 {
		t.Errorf("DroppedFrames = %d, want 2", got)
	}
	if got := o.Metrics.Snapshot().Counters[obs.MetricDroppedFrames]; got != 2 {
		t.Errorf("%s = %d, want 2", obs.MetricDroppedFrames, got)
	}
	if err := n.failure(); err != nil {
		t.Errorf("dropped frames must not fail the node: %v", err)
	}
}

// TestNodeObsDisabledHookAllocs pins the acceptance criterion that a node
// without Config.Obs pays zero allocations for the instrumentation on its
// rendezvous paths (the exact call sequence Send/complete/Recv execute).
func TestNodeObsDisabledHookAllocs(t *testing.T) {
	dec := decomp.Approximate(graph.Path(2))
	l := NewLoop(2)
	n, err := New(Config{Node: 0, Placement: []int{0, 1}, Dec: dec}, l.Transport(0))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	stamp := vector.V{1}
	allocs := testing.AllocsPerRun(200, func() {
		n.obsv.Rendezvous(n.cfg.Node, 0, 1, obs.PhaseSyn, stamp)
		t0 := n.obsv.Now()
		n.ins.SendBlockNS.Observe(n.obsv.Now() - t0)
		n.ins.SynAckNS.Observe(0)
		n.ins.RecvBlockNS.Observe(0)
		n.obsv.Rendezvous(n.cfg.Node, 0, 1, obs.PhaseAdopt, stamp)
		n.ins.Rendezvous.Add(1)
		n.ins.Proc(0).Add(1)
		n.ins.InternalEvents.Add(1)
		n.wireFrames[wire.KindSyn].Add(1)
		n.wireBytes[wire.KindSyn].Add(8)
	})
	if allocs != 0 {
		t.Fatalf("disabled obs hooks allocated %v times per run, want 0", allocs)
	}
}
