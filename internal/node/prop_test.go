package node

import (
	"fmt"
	"testing"
	"time"

	"syncstamp/internal/check"
	"syncstamp/internal/core"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// TestPropLoopRunMatchesSequential is the networking analogue of the csp
// property: replay each generated trace's per-process projections over a
// LoopTransport cluster (processes scattered across nodes by the input's
// deterministic rand), collect and reconstruct the run on node 0, and
// require the distributed stamps to equal a sequential core.StampTrace
// replay byte for byte — and to characterize ↦ exactly (Theorem 4 against
// the ground-truth message poset).
func TestPropLoopRunMatchesSequential(t *testing.T) {
	check.Run(t, check.Config{Runs: 8, MaxProcs: 6, MaxMessages: 24}, func(in *check.Input) error {
		tr := in.Trace
		rng := in.Rand()

		// Scatter processes over up to 3 nodes. Process 0 pins node 0 so
		// the collector always hosts something, and node indices are
		// compacted so every node up to the maximum is populated.
		nodes := 1 + rng.Intn(3)
		if nodes > tr.N {
			nodes = tr.N
		}
		placement := make([]int, tr.N)
		for p := 1; p < tr.N; p++ {
			placement[p] = rng.Intn(nodes)
		}
		used := make([]int, nodes)
		for _, host := range placement {
			used[host]++
		}
		compact := make([]int, nodes)
		next := 0
		for h, cnt := range used {
			if cnt > 0 {
				compact[h] = next
				next++
			}
		}
		for p, host := range placement {
			placement[p] = compact[host]
		}
		nodes = next

		programs := make(map[int]func(*Process) error, tr.N)
		proj := tr.ProcOps()
		for proc := 0; proc < tr.N; proc++ {
			mine := proj[proc]
			me := proc
			programs[proc] = func(p *Process) error {
				for _, k := range mine {
					op := tr.Ops[k]
					switch {
					case op.Kind == trace.OpInternal:
						p.Internal(fmt.Sprint(k))
					case op.From == me:
						if _, err := p.Send(op.To); err != nil {
							return err
						}
					default:
						if _, err := p.RecvFrom(op.From); err != nil {
							return err
						}
					}
				}
				return nil
			}
		}

		res, results, err := runCluster(in.Dec, placement, loopTransports(nodes), programs,
			Config{HandshakeTimeout: 10 * time.Second, RendezvousTimeout: 10 * time.Second})
		if err != nil {
			return err
		}
		for i, r := range results {
			if r.err != nil {
				return fmt.Errorf("node %d: %w", i, r.err)
			}
		}
		if got, want := res.Trace.NumMessages(), tr.NumMessages(); got != want {
			return fmt.Errorf("cluster reconstructed %d messages, replayed %d", got, want)
		}
		seq, err := core.StampTrace(res.Trace, in.Dec)
		if err != nil {
			return err
		}
		for m := range seq {
			if !vector.Eq(seq[m], res.Stamps[m]) {
				return fmt.Errorf("message %d: distributed stamp %v, sequential stamp %v", m, res.Stamps[m], seq[m])
			}
		}
		return check.ExactMatch(res.Trace, func(m1, m2 int) bool {
			return vector.Less(res.Stamps[m1], res.Stamps[m2])
		})
	})
}
