package node

import (
	"fmt"
	"os"

	"syncstamp/internal/obs"
)

// Flight-recorder dumps.
//
// The flight recorder (obs.Flight) is a bounded in-memory ring; this file
// is its durability story. A dump serializes the ring's surviving events —
// already in the deterministic (stamp sum, proc, seq) order — as
// journal-style JSONL records and lands them atomically: written and
// fsynced to a temp file through the journal machinery, then renamed over
// the dump path, so a reader never observes a torn dump and the newest
// dump always wins. Dumps fire on the node's first failure, on a peer
// loss, at end of run, and on demand (SIGQUIT, /debug/flight?dump=1).
//
// A kill -9 leaves no dump from the dying incarnation — nothing can — but
// the journal does the remembering: Restore re-emits every committed
// operation through the obs hooks, so a restarted node's ring carries the
// full committed history and its end-of-run dump is a complete causal
// post-mortem of the run, oracle-checkable via csp.LogsFromEvents.

// DumpFlight writes the flight recorder's current ring to Config.FlightDump
// and reports whether a dump was written. It is a no-op (false) when the
// recorder is disabled, the dump path is empty, or the ring is still empty;
// concurrent dumps serialize and each overwrites the last. Errors are
// swallowed: a dump is a best-effort post-mortem taken on failure paths
// that must not themselves fail.
func (n *Node) DumpFlight() bool {
	fl := n.flight()
	if fl == nil || n.cfg.FlightDump == "" {
		return false
	}
	events := fl.Events()
	if len(events) == 0 {
		return false
	}
	n.dumpMu.Lock()
	defer n.dumpMu.Unlock()
	return WriteFlightDump(n.cfg.FlightDump, events) == nil
}

// flight returns the node's flight recorder, nil when disabled.
func (n *Node) flight() *obs.Flight {
	if n.obsv == nil {
		return nil
	}
	return n.obsv.Flight
}

// WriteFlightDump writes events (in the order given; callers holding a ring
// dump already have obs.SortFlight order) to path atomically: temp file,
// one fsynced batch, rename.
func WriteFlightDump(path string, events []obs.Event) error {
	recs := make([]JournalRecord, 0, len(events))
	for _, e := range events {
		recs = append(recs, JournalRecord{
			Kind:  e.Phase.String(),
			Proc:  e.Proc,
			Peer:  e.Peer,
			Seq:   uint64(e.Seq),
			Stamp: e.Stamp,
			Note:  e.Note,
			Node:  e.Node,
		})
	}
	tmp := path + ".tmp"
	_ = os.Remove(tmp) // a stale temp from an interrupted dump is garbage
	jr, _, err := OpenJournal(tmp)
	if err != nil {
		return err
	}
	if _, err := jr.AppendBatch(recs); err != nil {
		_ = jr.Close()
		return err
	}
	if err := jr.Close(); err != nil {
		return fmt.Errorf("node: close flight dump: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("node: publish flight dump: %w", err)
	}
	return nil
}

// ReadFlightDump reads a flight dump back into obs events, in the dump's
// (deterministic) order. Reading shares the journal's torn-line tolerance,
// though a published dump is always complete — only a temp file can tear.
func ReadFlightDump(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("node: open flight dump: %w", err)
	}
	defer func() { _ = f.Close() }()
	recs, _, _, _, err := replayJournal(f)
	if err != nil {
		return nil, err
	}
	events := make([]obs.Event, 0, len(recs))
	for i, rec := range recs {
		ph, perr := obs.ParsePhase(rec.Kind)
		if perr != nil {
			return nil, fmt.Errorf("node: flight dump %s record %d: %w", path, i, perr)
		}
		events = append(events, obs.Event{
			Node:  rec.Node,
			Proc:  rec.Proc,
			Peer:  rec.Peer,
			Seq:   int(rec.Seq),
			Phase: ph,
			Stamp: rec.Stamp,
			Note:  rec.Note,
		})
	}
	return events, nil
}
