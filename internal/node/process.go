package node

import (
	"fmt"
	"time"

	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/obs"
	tssync "syncstamp/internal/sync"
	"syncstamp/internal/vector"
	"syncstamp/internal/wire"
)

// Message is one received rendezvous: who sent it and the agreed timestamp.
// The wire protocol carries no application payload — timestamps are the
// subject of the system; payload transport is the application's concern.
type Message struct {
	From  int
	Stamp vector.V
}

// Process is the handle a program uses to communicate. Each Process is
// owned by exactly one goroutine; its methods must not be called
// concurrently.
type Process struct {
	id    int
	n     *Node
	clock *core.Clock
	log   []csp.Record
	// seq numbers this process's sends (local and remote alike), starting
	// at 1. It is what makes retransmission and receiver-side dedup sound:
	// Send blocks until its ACK, so at most one sequence number is ever
	// outstanding per sender. A journal Restore resumes the counter, so a
	// replayed send reuses its crashed incarnation's number and is answered
	// idempotently.
	seq uint64
	// stash holds rendezvous requests taken off the mailbox while waiting
	// for a specific sender in RecvFrom; their senders stay parked.
	stash []inbound
}

// nextSeq allocates the next send sequence number.
func (p *Process) nextSeq() uint64 {
	p.seq++
	return p.seq
}

// ID returns the process index.
func (p *Process) ID() int { return p.id }

// Clock returns a snapshot of the process's current vector.
func (p *Process) Clock() vector.V { return p.clock.Current() }

// Send performs a rendezvous with process q: it blocks until q has received
// the message, then returns the agreed timestamp. The rendezvous deadline
// bounds the wait; exceeding it aborts the run (a synchronous computation
// cannot outlive a lost partner).
func (p *Process) Send(q int) (vector.V, error) {
	if q == p.id {
		return nil, fmt.Errorf("node: process %d sending to itself", p.id)
	}
	if q < 0 || q >= len(p.n.cfg.Placement) {
		return nil, fmt.Errorf("node: destination %d out of range [0,%d)", q, len(p.n.cfg.Placement))
	}
	n := p.n
	timer := time.NewTimer(n.cfg.RendezvousTimeout)
	defer timer.Stop()

	pre := p.clock.Current()
	n.obsv.Rendezvous(n.cfg.Node, p.id, q, obs.PhaseSyn, pre)
	t0 := n.obsv.Now()
	seq := p.nextSeq()
	target := n.cfg.Placement[q]
	remote := target != n.cfg.Node
	var ack chan vector.V
	var syn *wire.Frame
	if !remote {
		in := inbound{from: p.id, seq: seq, vec: pre, reply: make(chan vector.V, 1)}
		select {
		case n.mailboxes[q] <- in:
		case <-n.stop:
			return nil, ErrStopped
		case <-timer.C:
			err := fmt.Errorf("node: process %d -> %d: rendezvous deadline %v exceeded", p.id, q, n.cfg.RendezvousTimeout)
			n.fail(err)
			return nil, err
		}
		n.ins.SendBlockNS.Observe(n.obsv.Now() - t0)
		ack = in.reply
	} else {
		ack = n.registerWaiter(p.id, seq)
		syn = &wire.Frame{Kind: wire.KindSyn, From: p.id, To: q, Seq: seq, Vec: pre}
		if err := n.sendToPeer(target, syn); err != nil {
			if n.rec == nil {
				n.clearWaiter(p.id)
				if n.stopped() {
					return nil, ErrStopped
				}
				err = fmt.Errorf("node: process %d -> %d: %w", p.id, q, err)
				n.fail(err)
				return nil, err
			}
			// Recovery mode: the link may be down mid-reconnect; the
			// retransmission ticks below cover the lost first transmission.
		}
		n.ins.SendBlockNS.Observe(n.obsv.Now() - t0)
	}

	// With recovery on a remote send, two more wake-ups join the wait: the
	// retransmission backoff (re-send the self-contained SYN; dedup on the
	// far side makes this idempotent) and the exclusion broadcast (the
	// partner's node was removed from the run). In async mode the fixed
	// min/max backoff is replaced by the synchronizer's adaptive interval:
	// the peer's Jacobson RTO, doubled per attempt and jittered.
	var retryT *time.Timer
	var retryC <-chan time.Time
	var exclC chan struct{}
	var backoff time.Duration
	var peer *tssync.Peer
	var attempts int
	var sendWall, lastWall time.Time
	if remote && n.rec != nil {
		if n.asyncOn() {
			peer = n.coord.Peer(target)
		}
		if peer != nil {
			sendWall = time.Now()
			lastWall = sendWall
			backoff = peer.RetryIn(0)
		} else {
			backoff = n.rec.RetransmitMin
		}
		retryT = time.NewTimer(backoff)
		defer retryT.Stop()
		retryC = retryT.C
		exclC = n.exclusionCh()
	}

	t1 := n.obsv.Now()
	for {
		select {
		case stamp := <-ack:
			n.ins.SynAckNS.Observe(n.obsv.Now() - t1)
			if peer != nil {
				// Feed the estimator. Karn's rule and the Eifel-style spurious
				// check live in OnAck; an accepted sample is the full
				// first-transmission round trip.
				now := time.Now()
				sampled, spurious := peer.OnAck(now.Sub(sendWall), now.Sub(lastWall), attempts)
				if spurious {
					n.spurious.Add(1)
					n.ins.Spurious.Add(1)
				}
				if sampled && n.peerRTT != nil && n.peerRTT[target] != nil {
					n.peerRTT[target].Observe(now.Sub(sendWall).Nanoseconds())
				}
			}
			if err := p.clock.Adopt(stamp, q); err != nil {
				err = fmt.Errorf("node: process %d -> %d: %w", p.id, q, err)
				p.n.fail(err)
				return nil, err
			}
			if err := n.journalCommit(JournalRecord{Kind: journalSend, Proc: p.id, Peer: q, Seq: seq, Stamp: stamp}); err != nil {
				return nil, err
			}
			if remote {
				// The rendezvous is committed on our side; the next frame to
				// this peer advertises it as safe.
				n.noteSafe(target)
			}
			n.obsv.Rendezvous(n.cfg.Node, p.id, q, obs.PhaseAdopt, stamp)
			n.ins.Rendezvous.Add(1)
			n.ins.Proc(p.id).Add(1)
			if n.ins.CausalTicks != nil {
				n.ins.CausalTicks.Observe(obs.StampSum(stamp) - obs.StampSum(pre))
			}
			p.log = append(p.log, csp.Record{Kind: csp.RecordSend, Peer: q, Stamp: stamp})
			return stamp, nil
		case <-n.stop:
			if remote {
				n.clearWaiter(p.id)
			}
			return nil, ErrStopped
		case <-timer.C:
			if remote {
				n.clearWaiter(p.id)
			}
			err := fmt.Errorf("node: process %d -> %d: rendezvous deadline %v exceeded", p.id, q, n.cfg.RendezvousTimeout)
			n.fail(err)
			return nil, err
		case <-exclC:
			if n.isExcluded(target) {
				n.clearWaiter(p.id)
				return nil, fmt.Errorf("node: process %d -> %d: %w", p.id, q, ErrPeerLost)
			}
			exclC = n.exclusionCh() // some other peer was excluded; re-arm
		case <-retryC:
			if n.isExcluded(target) {
				n.clearWaiter(p.id)
				return nil, fmt.Errorf("node: process %d -> %d: %w", p.id, q, ErrPeerLost)
			}
			// Best effort: during a reconnect there is no connection to
			// write to; the next tick retries on the restored session.
			_ = n.sendToPeer(target, syn)
			n.retransmits.Add(1)
			n.ins.Retransmits.Add(1)
			if peer != nil {
				attempts++
				lastWall = time.Now()
				n.noteTimeout(target)
				backoff = peer.RetryIn(attempts)
				n.ins.BackoffNS.Observe(int64(backoff))
			} else {
				n.ins.BackoffNS.Observe(int64(backoff))
				backoff *= 2
				if backoff > n.rec.RetransmitMax {
					backoff = n.rec.RetransmitMax
				}
			}
			retryT.Reset(backoff)
		}
	}
}

// Recv blocks for the next incoming rendezvous from any peer, completes it,
// and returns the message. Requests stashed by earlier RecvFrom calls are
// delivered first, in arrival order.
func (p *Process) Recv() (Message, error) {
	var in inbound
	if len(p.stash) > 0 {
		in = p.stash[0]
		copy(p.stash, p.stash[1:])
		p.stash = p.stash[:len(p.stash)-1]
	} else {
		t0 := p.n.obsv.Now()
		select {
		case in = <-p.n.mailboxes[p.id]:
		case <-p.n.stop:
			return Message{}, ErrStopped
		}
		p.n.ins.RecvBlockNS.Observe(p.n.obsv.Now() - t0)
	}
	return p.complete(in)
}

// RecvFrom blocks for the next rendezvous from the specific process from,
// leaving requests from other senders pending (their senders remain
// parked, exactly as with one rendezvous channel per process pair).
// Replaying the per-process projections of a synchronous computation with
// RecvFrom is deadlock-free; with the any-source Recv it need not be.
func (p *Process) RecvFrom(from int) (Message, error) {
	for i, in := range p.stash {
		if in.from == from {
			p.stash = append(p.stash[:i], p.stash[i+1:]...)
			return p.complete(in)
		}
	}
	// Under recovery, a wait on a specific remote sender must also wake if
	// that sender's node gets excluded — otherwise the receiver would park
	// until the rendezvous deadline for a partner that is never coming.
	var exclC chan struct{}
	if p.n.rec != nil && from >= 0 && from < len(p.n.cfg.Placement) && p.n.cfg.Placement[from] != p.n.cfg.Node {
		if p.n.isExcluded(p.n.cfg.Placement[from]) {
			return Message{}, fmt.Errorf("node: process %d recvfrom %d: %w", p.id, from, ErrPeerLost)
		}
		exclC = p.n.exclusionCh()
	}
	t0 := p.n.obsv.Now()
	for {
		var in inbound
		select {
		case in = <-p.n.mailboxes[p.id]:
		case <-p.n.stop:
			return Message{}, ErrStopped
		case <-exclC:
			if p.n.isExcluded(p.n.cfg.Placement[from]) {
				return Message{}, fmt.Errorf("node: process %d recvfrom %d: %w", p.id, from, ErrPeerLost)
			}
			exclC = p.n.exclusionCh()
			continue
		}
		if in.from == from {
			p.n.ins.RecvBlockNS.Observe(p.n.obsv.Now() - t0)
			return p.complete(in)
		}
		p.stash = append(p.stash, in)
	}
}

// complete performs the receiver's half of the rendezvous: the Figure 5
// merge yields the stamp, which goes back to the sender — over the reply
// channel for a local sender, on an ACK frame for a remote one.
func (p *Process) complete(in inbound) (Message, error) {
	stamp, err := p.clock.Merge(in.vec, in.from)
	if err != nil {
		err = fmt.Errorf("node: process %d receiving from %d: %w", p.id, in.from, err)
		p.n.fail(err)
		return Message{}, err
	}
	p.n.obsv.Rendezvous(p.n.cfg.Node, p.id, in.from, obs.PhaseMerge, stamp)
	// Write-ahead: the merge is journaled (and fsynced) before any ACK can
	// leave the node, so a crash after this point re-ACKs from the restored
	// dedup cache instead of merging twice.
	if err := p.n.journalCommit(JournalRecord{Kind: journalRecv, Proc: p.id, Peer: in.from, Seq: in.seq, Stamp: stamp}); err != nil {
		return Message{}, err
	}
	if in.reply != nil {
		in.reply <- stamp // buffered; the sender is parked on it
	} else {
		if p.n.rec != nil {
			p.n.noteMerged(in.from, in.seq, p.id, stamp)
		}
		// The merge is journaled: the rendezvous is committed on our side,
		// so the ACK itself already carries the advanced safe counter.
		p.n.noteSafe(p.n.cfg.Placement[in.from])
		pc, err := p.n.connTo(p.n.cfg.Placement[in.from])
		if err == nil {
			err = pc.send(&wire.Frame{Kind: wire.KindAck, From: p.id, To: in.from, Seq: in.seq, Vec: stamp})
		}
		if err != nil {
			if p.n.stopped() {
				return Message{}, ErrStopped
			}
			if p.n.rec == nil {
				err = fmt.Errorf("node: process %d acking %d: %w", p.id, in.from, err)
				p.n.fail(err)
				return Message{}, err
			}
			// The ACK died with the connection; the sender's retransmission
			// will be answered from the dedup cache once the session resumes.
		}
	}
	p.n.obsv.Rendezvous(p.n.cfg.Node, p.id, in.from, obs.PhaseAck, stamp)
	p.n.ins.Rendezvous.Add(1)
	p.n.ins.Proc(p.id).Add(1)
	p.log = append(p.log, csp.Record{Kind: csp.RecordRecv, Peer: in.from, Stamp: stamp})
	return Message{From: in.from, Stamp: stamp}, nil
}

// Internal records an internal event carrying note (Section 5). Its full
// (prev, succ, c) stamp is resolved at reconstruction time, when the next
// message, if any, is known. Note travels the wire as a string.
func (p *Process) Internal(note string) {
	// Journal failures fail the run via journalCommit; the in-memory record
	// is still appended so the log stays consistent with the clock.
	_ = p.n.journalCommit(JournalRecord{Kind: journalInternal, Proc: p.id, Note: note})
	p.log = append(p.log, csp.Record{Kind: csp.RecordInternal, Note: note})
	p.n.ins.InternalEvents.Add(1)
	// Guarded so the clock snapshot (a clone) only happens when tracing.
	if o := p.n.obsv; o != nil && o.Tracer != nil {
		o.Internal(p.n.cfg.Node, p.id, p.clock.Current(), note)
	}
}
