package node

import (
	"fmt"
	"time"

	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/obs"
	"syncstamp/internal/vector"
	"syncstamp/internal/wire"
)

// Message is one received rendezvous: who sent it and the agreed timestamp.
// The wire protocol carries no application payload — timestamps are the
// subject of the system; payload transport is the application's concern.
type Message struct {
	From  int
	Stamp vector.V
}

// Process is the handle a program uses to communicate. Each Process is
// owned by exactly one goroutine; its methods must not be called
// concurrently.
type Process struct {
	id    int
	n     *Node
	clock *core.Clock
	log   []csp.Record
	// stash holds rendezvous requests taken off the mailbox while waiting
	// for a specific sender in RecvFrom; their senders stay parked.
	stash []inbound
}

// ID returns the process index.
func (p *Process) ID() int { return p.id }

// Clock returns a snapshot of the process's current vector.
func (p *Process) Clock() vector.V { return p.clock.Current() }

// Send performs a rendezvous with process q: it blocks until q has received
// the message, then returns the agreed timestamp. The rendezvous deadline
// bounds the wait; exceeding it aborts the run (a synchronous computation
// cannot outlive a lost partner).
func (p *Process) Send(q int) (vector.V, error) {
	if q == p.id {
		return nil, fmt.Errorf("node: process %d sending to itself", p.id)
	}
	if q < 0 || q >= len(p.n.cfg.Placement) {
		return nil, fmt.Errorf("node: destination %d out of range [0,%d)", q, len(p.n.cfg.Placement))
	}
	n := p.n
	timer := time.NewTimer(n.cfg.RendezvousTimeout)
	defer timer.Stop()

	pre := p.clock.Current()
	n.obsv.Rendezvous(n.cfg.Node, p.id, q, obs.PhaseSyn, pre)
	t0 := n.obsv.Now()
	var ack chan vector.V
	if n.cfg.Placement[q] == n.cfg.Node {
		in := inbound{from: p.id, vec: pre, reply: make(chan vector.V, 1)}
		select {
		case n.mailboxes[q] <- in:
		case <-n.stop:
			return nil, ErrStopped
		case <-timer.C:
			err := fmt.Errorf("node: process %d -> %d: rendezvous deadline %v exceeded", p.id, q, n.cfg.RendezvousTimeout)
			n.fail(err)
			return nil, err
		}
		n.ins.SendBlockNS.Observe(n.obsv.Now() - t0)
		ack = in.reply
	} else {
		pc, err := n.connTo(n.cfg.Placement[q])
		if err != nil {
			return nil, err
		}
		ack = n.registerWaiter(p.id)
		syn := &wire.Frame{Kind: wire.KindSyn, From: p.id, To: q, Vec: pre}
		if err := pc.send(syn); err != nil {
			n.clearWaiter(p.id)
			if n.stopped() {
				return nil, ErrStopped
			}
			err = fmt.Errorf("node: process %d -> %d: %w", p.id, q, err)
			n.fail(err)
			return nil, err
		}
		n.ins.SendBlockNS.Observe(n.obsv.Now() - t0)
	}

	t1 := n.obsv.Now()
	select {
	case stamp := <-ack:
		n.ins.SynAckNS.Observe(n.obsv.Now() - t1)
		if err := p.clock.Adopt(stamp, q); err != nil {
			err = fmt.Errorf("node: process %d -> %d: %w", p.id, q, err)
			p.n.fail(err)
			return nil, err
		}
		n.obsv.Rendezvous(n.cfg.Node, p.id, q, obs.PhaseAdopt, stamp)
		n.ins.Rendezvous.Add(1)
		n.ins.Proc(p.id).Add(1)
		if n.ins.CausalTicks != nil {
			n.ins.CausalTicks.Observe(obs.StampSum(stamp) - obs.StampSum(pre))
		}
		p.log = append(p.log, csp.Record{Kind: csp.RecordSend, Peer: q, Stamp: stamp})
		return stamp, nil
	case <-n.stop:
		n.clearWaiter(p.id)
		return nil, ErrStopped
	case <-timer.C:
		n.clearWaiter(p.id)
		err := fmt.Errorf("node: process %d -> %d: rendezvous deadline %v exceeded", p.id, q, n.cfg.RendezvousTimeout)
		n.fail(err)
		return nil, err
	}
}

// Recv blocks for the next incoming rendezvous from any peer, completes it,
// and returns the message. Requests stashed by earlier RecvFrom calls are
// delivered first, in arrival order.
func (p *Process) Recv() (Message, error) {
	var in inbound
	if len(p.stash) > 0 {
		in = p.stash[0]
		copy(p.stash, p.stash[1:])
		p.stash = p.stash[:len(p.stash)-1]
	} else {
		t0 := p.n.obsv.Now()
		select {
		case in = <-p.n.mailboxes[p.id]:
		case <-p.n.stop:
			return Message{}, ErrStopped
		}
		p.n.ins.RecvBlockNS.Observe(p.n.obsv.Now() - t0)
	}
	return p.complete(in)
}

// RecvFrom blocks for the next rendezvous from the specific process from,
// leaving requests from other senders pending (their senders remain
// parked, exactly as with one rendezvous channel per process pair).
// Replaying the per-process projections of a synchronous computation with
// RecvFrom is deadlock-free; with the any-source Recv it need not be.
func (p *Process) RecvFrom(from int) (Message, error) {
	for i, in := range p.stash {
		if in.from == from {
			p.stash = append(p.stash[:i], p.stash[i+1:]...)
			return p.complete(in)
		}
	}
	t0 := p.n.obsv.Now()
	for {
		var in inbound
		select {
		case in = <-p.n.mailboxes[p.id]:
		case <-p.n.stop:
			return Message{}, ErrStopped
		}
		if in.from == from {
			p.n.ins.RecvBlockNS.Observe(p.n.obsv.Now() - t0)
			return p.complete(in)
		}
		p.stash = append(p.stash, in)
	}
}

// complete performs the receiver's half of the rendezvous: the Figure 5
// merge yields the stamp, which goes back to the sender — over the reply
// channel for a local sender, on an ACK frame for a remote one.
func (p *Process) complete(in inbound) (Message, error) {
	stamp, err := p.clock.Merge(in.vec, in.from)
	if err != nil {
		err = fmt.Errorf("node: process %d receiving from %d: %w", p.id, in.from, err)
		p.n.fail(err)
		return Message{}, err
	}
	p.n.obsv.Rendezvous(p.n.cfg.Node, p.id, in.from, obs.PhaseMerge, stamp)
	if in.reply != nil {
		in.reply <- stamp // buffered; the sender is parked on it
	} else {
		pc, err := p.n.connTo(p.n.cfg.Placement[in.from])
		if err == nil {
			err = pc.send(&wire.Frame{Kind: wire.KindAck, From: p.id, To: in.from, Vec: stamp})
		}
		if err != nil {
			if p.n.stopped() {
				return Message{}, ErrStopped
			}
			err = fmt.Errorf("node: process %d acking %d: %w", p.id, in.from, err)
			p.n.fail(err)
			return Message{}, err
		}
	}
	p.n.obsv.Rendezvous(p.n.cfg.Node, p.id, in.from, obs.PhaseAck, stamp)
	p.n.ins.Rendezvous.Add(1)
	p.n.ins.Proc(p.id).Add(1)
	p.log = append(p.log, csp.Record{Kind: csp.RecordRecv, Peer: in.from, Stamp: stamp})
	return Message{From: in.from, Stamp: stamp}, nil
}

// Internal records an internal event carrying note (Section 5). Its full
// (prev, succ, c) stamp is resolved at reconstruction time, when the next
// message, if any, is known. Note travels the wire as a string.
func (p *Process) Internal(note string) {
	p.log = append(p.log, csp.Record{Kind: csp.RecordInternal, Note: note})
	p.n.ins.InternalEvents.Add(1)
	// Guarded so the clock snapshot (a clone) only happens when tracing.
	if o := p.n.obsv; o != nil && o.Tracer != nil {
		o.Internal(p.n.cfg.Node, p.id, p.clock.Current(), note)
	}
}
