package node

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/vector"
)

// leakCheck fails the test if the goroutine count does not return to
// (roughly) its value at registration time. Registered as a cleanup so it
// runs after every node's Close.
func leakCheck(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		for {
			if runtime.NumGoroutine() <= base+2 {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<18)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d at start, %d after run\n%s", base, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// clusterResult is one node's outcome inside runCluster.
type clusterResult struct {
	info *RunInfo
	err  error
}

// runCluster runs one node per placement value over the given transports,
// has every non-zero node report its logs to node 0, and returns node 0's
// reconstruction alongside each node's run outcome.
func runCluster(dec *decomp.Decomposition, placement []int, transports []Transport,
	programs map[int]func(*Process) error, cfg Config) (*csp.Result, []clusterResult, error) {
	nodes := len(transports)
	results := make([]clusterResult, nodes)
	var collected *csp.Result
	var collectErr error
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cfg
			c.Node = i
			c.Placement = placement
			c.Dec = dec
			n, err := New(c, transports[i])
			if err != nil {
				results[i].err = err
				return
			}
			defer n.Close()
			info, err := n.Run(programs)
			results[i] = clusterResult{info: info, err: err}
			if err != nil {
				return
			}
			if i == 0 {
				collected, collectErr = n.Collect(info, 10*time.Second)
			} else {
				results[i].err = n.SendReport(0, info)
			}
		}(i)
	}
	wg.Wait()
	return collected, results, collectErr
}

// loopTransports builds a Loop fabric and hands out one transport per node.
func loopTransports(nodes int) []Transport {
	l := NewLoop(nodes)
	ts := make([]Transport, nodes)
	for i := range ts {
		ts[i] = l.Transport(i)
	}
	return ts
}

// pingPong is a 2-process program set: 0 sends to 1, 1 replies, repeated.
func pingPong(rounds int) map[int]func(*Process) error {
	return map[int]func(*Process) error{
		0: func(p *Process) error {
			for i := 0; i < rounds; i++ {
				if _, err := p.Send(1); err != nil {
					return err
				}
				if _, err := p.RecvFrom(1); err != nil {
					return err
				}
			}
			return nil
		},
		1: func(p *Process) error {
			for i := 0; i < rounds; i++ {
				if _, err := p.RecvFrom(0); err != nil {
					return err
				}
				if _, err := p.Send(0); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// verifyAgainstSequential checks the reconstructed run against the
// sequential Figure 5 replay, stamp for stamp.
func verifyAgainstSequential(t *testing.T, res *csp.Result, dec *decomp.Decomposition, wantMessages int) {
	t.Helper()
	if got := res.Trace.NumMessages(); got != wantMessages {
		t.Fatalf("reconstructed %d messages, want %d", got, wantMessages)
	}
	seq, err := core.StampTrace(res.Trace, dec)
	if err != nil {
		t.Fatal(err)
	}
	for m := range seq {
		if !vector.Eq(seq[m], res.Stamps[m]) {
			t.Fatalf("message %d: distributed stamp %v, sequential stamp %v", m, res.Stamps[m], seq[m])
		}
	}
}

func TestLoopPingPong(t *testing.T) {
	leakCheck(t)
	g := graph.Path(2)
	dec := decomp.Best(g)
	res, results, err := runCluster(dec, []int{0, 1}, loopTransports(2), pingPong(10), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("node %d: %v", i, r.err)
		}
	}
	verifyAgainstSequential(t, res, dec, 20)
	// Every rendezvous crossed the wire: exactly one SYN and one ACK each,
	// and the delta codec must not cost more than dense would.
	total := results[0].info.Overhead
	total.Merge(results[1].info.Overhead)
	if total.Frames != 2*20 {
		t.Fatalf("accounted %d vector frames for 20 remote messages", total.Frames)
	}
	if total.WireBytes > total.DenseBytes {
		t.Fatalf("delta codec cost %d bytes, dense would cost %d", total.WireBytes, total.DenseBytes)
	}
}

// TestLoopTriangleMixedPlacement exercises local and remote rendezvous in
// one run: a triangle with two processes co-located.
func TestLoopTriangleMixedPlacement(t *testing.T) {
	leakCheck(t)
	g := graph.Triangle()
	dec := decomp.Best(g)
	programs := map[int]func(*Process) error{
		0: func(p *Process) error {
			if _, err := p.Send(1); err != nil {
				return err
			}
			if _, err := p.RecvFrom(2); err != nil {
				return err
			}
			p.Internal("done-0")
			return nil
		},
		1: func(p *Process) error {
			if _, err := p.RecvFrom(0); err != nil {
				return err
			}
			if _, err := p.Send(2); err != nil {
				return err
			}
			return nil
		},
		2: func(p *Process) error {
			if _, err := p.RecvFrom(1); err != nil {
				return err
			}
			if _, err := p.Send(0); err != nil {
				return err
			}
			return nil
		},
	}
	// Processes 0 and 2 share node 0, so the 2->0 message is local while
	// 0->1 and 1->2 cross the wire.
	res, results, err := runCluster(dec, []int{0, 1, 0}, loopTransports(2), programs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("node %d: %v", i, r.err)
		}
	}
	verifyAgainstSequential(t, res, dec, 3)
	if len(res.Internal) != 1 {
		t.Fatalf("reconstructed %d internal events, want 1", len(res.Internal))
	}
}

func TestTCPPingPong(t *testing.T) {
	leakCheck(t)
	g := graph.Path(2)
	dec := decomp.Best(g)
	tcp := make([]*TCPTransport, 2)
	addrs := make([]string, 2)
	for i := range tcp {
		tr, err := NewTCPTransport("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tcp[i] = tr
		addrs[i] = tr.Addr()
	}
	transports := make([]Transport, len(tcp))
	for i, tr := range tcp {
		tr.SetPeers(addrs)
		transports[i] = tr
	}
	res, results, err := runCluster(dec, []int{0, 1}, transports, pingPong(25), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("node %d: %v", i, r.err)
		}
	}
	verifyAgainstSequential(t, res, dec, 50)
}

// TestStopUnblocksParkedOps parks a receiver (no sender exists) and a
// sender (no receiver exists) and checks Stop releases both with
// ErrStopped.
func TestStopUnblocksParkedOps(t *testing.T) {
	leakCheck(t)
	g := graph.Path(3)
	dec := decomp.Best(g)
	l := NewLoop(1)
	n, err := New(Config{Node: 0, Placement: []int{0, 0, 0}, Dec: dec}, l.Transport(0))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	opErrs := make(chan error, 2)
	go func() {
		time.Sleep(50 * time.Millisecond)
		n.Stop()
	}()
	_, err = n.Run(map[int]func(*Process) error{
		0: func(p *Process) error {
			_, err := p.Recv() // nobody ever sends to 0
			opErrs <- err
			return err
		},
		2: func(p *Process) error {
			_, err := p.Send(1) // process 1 never receives
			opErrs <- err
			return err
		},
	})
	if err == nil {
		t.Fatal("Run succeeded though both programs were parked forever")
	}
	for i := 0; i < 2; i++ {
		if opErr := <-opErrs; !errors.Is(opErr, ErrStopped) {
			t.Fatalf("parked operation returned %v, want ErrStopped", opErr)
		}
	}
}

// TestRendezvousDeadline: a sender whose partner never calls Recv must be
// released with a deadline error, aborting the run on both nodes.
func TestRendezvousDeadline(t *testing.T) {
	leakCheck(t)
	g := graph.Path(2)
	dec := decomp.Best(g)
	cfg := Config{RendezvousTimeout: 100 * time.Millisecond}
	programs := map[int]func(*Process) error{
		0: func(p *Process) error {
			_, err := p.Send(1) // process 1 never receives
			return err
		},
		// Process 1 deliberately runs no program.
	}
	_, results, _ := runCluster(dec, []int{0, 1}, loopTransports(2), programs, cfg)
	if results[0].err == nil {
		t.Fatal("sender's node succeeded though the rendezvous could never complete")
	}
	if !strings.Contains(results[0].err.Error(), "rendezvous deadline") {
		t.Fatalf("sender's node failed with %v, want a rendezvous deadline error", results[0].err)
	}
}

// TestPeerDeathAbortsRun kills the receiver's node mid-rendezvous: the
// sender's node must detect the dead connection and release the parked
// send, rather than hang or leak.
func TestPeerDeathAbortsRun(t *testing.T) {
	leakCheck(t)
	g := graph.Path(3)
	dec := decomp.Best(g)
	l := NewLoop(2)
	placement := []int{0, 1, 1}

	n0, err := New(Config{Node: 0, Placement: placement, Dec: dec}, l.Transport(0))
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, err := New(Config{Node: 1, Placement: placement, Dec: dec}, l.Transport(1))
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()

	// Node 0 hosts the victim: process 0 waits for process 2 (which never
	// sends), so process 1's SYN sits unanswered — a rendezvous in flight.
	n0done := make(chan struct{})
	go func() {
		defer close(n0done)
		_, _ = n0.Run(map[int]func(*Process) error{
			0: func(p *Process) error {
				_, err := p.RecvFrom(2)
				return err
			},
		})
	}()
	go func() {
		time.Sleep(100 * time.Millisecond)
		n0.Stop() // the "kill": connections drop without a BYE
	}()

	_, err = n1.Run(map[int]func(*Process) error{
		1: func(p *Process) error {
			_, err := p.Send(0)
			return err
		},
	})
	if err == nil {
		t.Fatal("sender's node succeeded though its peer died mid-rendezvous")
	}
	<-n0done
}

// TestDigestMismatchRefused: nodes configured with different placements
// must refuse the handshake.
func TestDigestMismatchRefused(t *testing.T) {
	leakCheck(t)
	g := graph.Path(2)
	dec := decomp.Best(g)
	l := NewLoop(2)

	n0, err := New(Config{Node: 0, Placement: []int{0, 1}, Dec: dec, HandshakeTimeout: time.Second}, l.Transport(0))
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, err := New(Config{Node: 1, Placement: []int{1, 0}, Dec: dec, HandshakeTimeout: time.Second}, l.Transport(1))
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()

	errs := make(chan error, 2)
	go func() {
		_, err := n0.Run(map[int]func(*Process) error{0: nil})
		errs <- err
	}()
	go func() {
		_, err := n1.Run(map[int]func(*Process) error{0: nil})
		errs <- err
	}()
	sawDigest := false
	for i := 0; i < 2; i++ {
		err := <-errs
		if err == nil {
			t.Fatal("a node completed its run despite mismatched placements")
		}
		if strings.Contains(err.Error(), "topology digest") {
			sawDigest = true
		}
	}
	if !sawDigest {
		t.Fatal("neither node reported the topology digest mismatch")
	}
}

func TestConfigValidation(t *testing.T) {
	g := graph.Path(2)
	dec := decomp.Best(g)
	if _, err := New(Config{Node: 0, Placement: []int{0}, Dec: dec}, NewLoop(1).Transport(0)); err == nil {
		t.Fatal("accepted a placement shorter than the process count")
	}
	if _, err := New(Config{Node: 0, Placement: []int{0, -1}, Dec: dec}, NewLoop(1).Transport(0)); err == nil {
		t.Fatal("accepted a negative placement entry")
	}
	if _, err := New(Config{Node: 0, Placement: []int{0, 1}, Dec: nil}, NewLoop(1).Transport(0)); err == nil {
		t.Fatal("accepted a nil decomposition")
	}
}
