package node

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"syncstamp/internal/check"
	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// oracleLogs builds per-process rendezvous logs carrying the sequential
// replay oracle's stamps for a generated computation — the input a correct
// distributed run hands a collector.
func oracleLogs(t *testing.T, in *check.Input) [][]csp.Record {
	t.Helper()
	stamps, err := core.StampTrace(in.Trace, in.Dec)
	if err != nil {
		t.Fatalf("seed %d: StampTrace: %v", in.Seed, err)
	}
	logs := make([][]csp.Record, in.Topo.N())
	mi := 0
	for _, op := range in.Trace.Ops {
		switch op.Kind {
		case trace.OpMessage:
			s := stamps[mi]
			mi++
			logs[op.From] = append(logs[op.From], csp.Record{Kind: csp.RecordSend, Peer: op.To, Stamp: s})
			logs[op.To] = append(logs[op.To], csp.Record{Kind: csp.RecordRecv, Peer: op.From, Stamp: s})
		case trace.OpInternal:
			logs[op.Proc] = append(logs[op.Proc], csp.Record{Kind: csp.RecordInternal, Note: "tick"})
		}
	}
	return logs
}

// feedTree streams logs into a tree, each process in program order,
// processes concurrently — the access pattern a live collect produces.
func feedTree(tree *CollectorTree, logs [][]csp.Record) {
	var wg sync.WaitGroup
	for p, log := range logs {
		wg.Add(1)
		go func(p int, log []csp.Record) {
			defer wg.Done()
			for _, rec := range log {
				_ = tree.Ingest(p, rec)
			}
		}(p, log)
	}
	wg.Wait()
}

// genSeed picks a generated computation with enough traffic to fill spill
// segments.
func genSeed(t *testing.T) *check.Input {
	t.Helper()
	for seed := int64(0); seed < 100; seed++ {
		in := check.GenInput(seed, check.Config{})
		if in.Trace.NumMessages() >= 30 {
			return in
		}
	}
	t.Fatal("no generated trace carries 30 messages")
	return nil
}

// TestCollectorTreeMatchesReplay streams an oracle-stamped run through a
// 4-leaf spilling tree: the verdict must be clean with exact totals, spill
// must engage with resident memory bounded by the segment size, the
// retained logs must reconstruct a trace whose stamps match the sequential
// replay, and the spill files must restore the identical logs.
func TestCollectorTreeMatchesReplay(t *testing.T) {
	in := genSeed(t)
	logs := oracleLogs(t, in)
	topo := check.NewDecompTopology(in.Dec)
	dir := t.TempDir()
	const leaves, segRecords = 4, 8
	tree, err := NewCollectorTree(topo, TreeConfig{Leaves: leaves, SpillDir: dir, SegmentRecords: segRecords, KeepLogs: true})
	if err != nil {
		t.Fatal(err)
	}
	feedTree(tree, logs)
	v, err := tree.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Fatalf("clean run rejected: %v", v.Problems)
	}
	if int(v.Messages) != in.Trace.NumMessages() {
		t.Fatalf("verdict counts %d messages, trace has %d", v.Messages, in.Trace.NumMessages())
	}
	if v.Shards != leaves {
		t.Fatalf("verdict saw %d shards, tree has %d", v.Shards, leaves)
	}
	if v.SegmentsSpilled == 0 || v.SpillBytes == 0 {
		t.Fatalf("spill never engaged: %d segments, %d bytes", v.SegmentsSpilled, v.SpillBytes)
	}
	if v.MaxResident > segRecords {
		t.Fatalf("a leaf held %d records resident, segment size is %d", v.MaxResident, segRecords)
	}

	// The streaming verdict must agree with the whole-trace replay oracle
	// over the retained logs.
	res, err := csp.Reconstruct(in.Dec, tree.Logs())
	if err != nil {
		t.Fatalf("reconstruct retained logs: %v", err)
	}
	seq, err := core.StampTrace(res.Trace, in.Dec)
	if err != nil {
		t.Fatal(err)
	}
	for m := range seq {
		if !vector.Eq(seq[m], res.Stamps[m]) {
			t.Fatalf("message %d: collected stamp %v, sequential stamp %v", m, res.Stamps[m], seq[m])
		}
	}

	// The spill is the run: restoring it yields the same per-process logs.
	restored, err := ReadSpill(dir, leaves, in.Topo.N())
	if err != nil {
		t.Fatal(err)
	}
	for p := range logs {
		if len(restored[p]) != len(logs[p]) {
			t.Fatalf("process %d: spill restored %d records, logged %d", p, len(restored[p]), len(logs[p]))
		}
		for i := range logs[p] {
			want, got := logs[p][i], restored[p][i]
			if got.Kind != want.Kind || got.Peer != want.Peer || !vector.Eq(got.Stamp, want.Stamp) {
				t.Fatalf("process %d record %d: restored %+v, logged %+v", p, i, got, want)
			}
		}
	}
}

// TestCollectorTreeCorruptStamp confirms a sharded tree still flips the
// verdict when one stamp half is corrupted in flight.
func TestCollectorTreeCorruptStamp(t *testing.T) {
	in := genSeed(t)
	logs := oracleLogs(t, in)
corrupt:
	for p := range logs {
		for i, rec := range logs[p] {
			if rec.Kind == csp.RecordSend {
				logs[p][i].Stamp = rec.Stamp.Clone()
				logs[p][i].Stamp[len(rec.Stamp)-1] += 2
				break corrupt
			}
		}
	}
	tree, err := NewCollectorTree(check.NewDecompTopology(in.Dec), TreeConfig{Leaves: 3})
	if err != nil {
		t.Fatal(err)
	}
	feedTree(tree, logs)
	v, err := tree.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("corrupted stamp half accepted by the tree")
	}
}

// TestCollectorTreeLeafCrash kills one leaf mid-stream: Ingest must not
// block, the root must refuse the run, and the verdict must name the
// missing shard.
func TestCollectorTreeLeafCrash(t *testing.T) {
	in := genSeed(t)
	logs := oracleLogs(t, in)
	topo := check.NewDecompTopology(in.Dec)
	const leaves = 4
	tree, err := NewCollectorTree(topo, TreeConfig{
		Leaves:     leaves,
		crashLeaf:  2,
		crashAfter: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		feedTree(tree, logs)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Ingest blocked on the crashed leaf")
	}
	v, err := tree.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("verdict OK despite a crashed leaf")
	}
	hit := false
	for _, p := range v.Problems {
		if strings.Contains(p, "shard 2 missing") {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("no problem names the crashed shard: %v", v.Problems)
	}
}

// TestSpillTornSegmentRestore kills a spill file mid-record — the torn tail
// a crash mid-write leaves — and requires restore to come back with exactly
// the complete prefix, mirroring the journal's torn-line recovery.
func TestSpillTornSegmentRestore(t *testing.T) {
	in := genSeed(t)
	logs := oracleLogs(t, in)
	topo := check.NewDecompTopology(in.Dec)
	dir := t.TempDir()
	const leaves = 2
	tree, err := NewCollectorTree(topo, TreeConfig{Leaves: leaves, SpillDir: dir, SegmentRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	feedTree(tree, logs)
	if _, err := tree.Finish(); err != nil {
		t.Fatal(err)
	}
	full, err := ReadSpill(dir, leaves, in.Topo.N())
	if err != nil {
		t.Fatal(err)
	}

	// Tear shard 0 inside its final data record. (The ReadSpill above
	// appended a restart marker as the file's last line — the tear must cut
	// past it, into the record before.)
	path := SpillPath(dir, 0)
	content, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := bytes.TrimSuffix(content, []byte("\n"))
	markerStart := bytes.LastIndexByte(body, '\n') + 1
	if err := os.Truncate(path, int64(markerStart-5)); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSpill(dir, leaves, in.Topo.N())
	if err != nil {
		t.Fatalf("restore after torn segment: %v", err)
	}
	fullN, restoredN := 0, 0
	for p := range full {
		fullN += len(full[p])
		restoredN += len(restored[p])
		if len(restored[p]) > len(full[p]) {
			t.Fatalf("process %d: restore grew from %d to %d records", p, len(full[p]), len(restored[p]))
		}
		for i := range restored[p] {
			want, got := full[p][i], restored[p][i]
			if got.Kind != want.Kind || got.Peer != want.Peer || !vector.Eq(got.Stamp, want.Stamp) {
				t.Fatalf("process %d record %d: torn restore %+v is not a prefix of %+v", p, i, got, want)
			}
		}
	}
	if restoredN != fullN-1 {
		t.Fatalf("torn restore holds %d records, want the %d-record complete prefix", restoredN, fullN-1)
	}
}

// TestCollectTreeCluster runs a real 2-node cluster whose collector is the
// sharded tree: the verdict must be clean, the counters must land in
// RunInfo, and restoring the spill must reconstruct the same trace the
// legacy whole-run collector would have.
func TestCollectTreeCluster(t *testing.T) {
	leakCheck(t)
	g := graph.Path(2)
	dec := decomp.Best(g)
	dir := t.TempDir()
	transports := loopTransports(2)
	var verdict *TreeVerdict
	var info0 *RunInfo
	var collectErr error
	results := make([]clusterResult, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{Node: i, Placement: []int{0, 1}, Dec: dec}
			n, err := New(cfg, transports[i])
			if err != nil {
				results[i].err = err
				return
			}
			defer n.Close()
			info, err := n.Run(pingPong(20))
			results[i] = clusterResult{info: info, err: err}
			if err != nil {
				return
			}
			if i == 0 {
				info0 = info
				verdict, collectErr = n.CollectTree(info, 10*time.Second, TreeConfig{
					Leaves: 2, SpillDir: dir, SegmentRecords: 8,
				})
			} else {
				results[i].err = n.SendReport(0, info)
			}
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("node %d: %v", i, r.err)
		}
	}
	if collectErr != nil {
		t.Fatal(collectErr)
	}
	if !verdict.OK {
		t.Fatalf("cluster run rejected: %v", verdict.Problems)
	}
	if verdict.Messages != 40 {
		t.Fatalf("verdict counts %d messages, run carried 40", verdict.Messages)
	}
	if info0.ShardsVerified != 2 || info0.SegmentsSpilled == 0 || info0.SpillBytes == 0 {
		t.Fatalf("RunInfo counters: shards=%d segments=%d bytes=%d",
			info0.ShardsVerified, info0.SegmentsSpilled, info0.SpillBytes)
	}
	// The spill is a faithful record: restore and replay the whole trace.
	logs, err := ReadSpill(dir, 2, dec.N())
	if err != nil {
		t.Fatal(err)
	}
	res, err := csp.Reconstruct(dec, logs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.NumMessages() != 40 {
		t.Fatalf("spill replay reconstructed %d messages, want 40", res.Trace.NumMessages())
	}
	seq, err := core.StampTrace(res.Trace, dec)
	if err != nil {
		t.Fatal(err)
	}
	for m := range seq {
		if !vector.Eq(seq[m], res.Stamps[m]) {
			t.Fatalf("message %d: spilled stamp %v, sequential stamp %v", m, res.Stamps[m], seq[m])
		}
	}
}

// TestCollectTimeoutNamesStraggler holds one node's report back: the
// collect timeout error must name the straggler node, not just count it.
func TestCollectTimeoutNamesStraggler(t *testing.T) {
	leakCheck(t)
	g := graph.Path(3)
	dec := decomp.Best(g)
	transports := loopTransports(3)
	programs := map[int]func(*Process) error{
		0: func(p *Process) error { _, err := p.Send(1); return err },
		1: func(p *Process) error { _, err := p.RecvFrom(0); return err },
		2: func(p *Process) error { return nil },
	}
	var collectErr error
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{Node: i, Placement: []int{0, 1, 2}, Dec: dec}
			n, err := New(cfg, transports[i])
			if err != nil {
				if i == 0 {
					collectErr = err
				}
				return
			}
			defer n.Close()
			info, err := n.Run(programs)
			if err != nil {
				if i == 0 {
					collectErr = err
				}
				return
			}
			switch i {
			case 0:
				_, collectErr = n.Collect(info, 600*time.Millisecond)
			case 1:
				_ = n.SendReport(0, info)
			case 2:
				// The straggler: never reports.
			}
		}(i)
	}
	wg.Wait()
	if collectErr == nil {
		t.Fatal("collect succeeded though node 2 never reported")
	}
	if !strings.Contains(collectErr.Error(), "still waiting on node(s) [2]") {
		t.Fatalf("timeout error does not name the straggler: %v", collectErr)
	}
}
