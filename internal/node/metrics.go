package node

import (
	"sort"

	"syncstamp/internal/obs"
	"syncstamp/internal/wire"
)

// Cluster metrics rollup.
//
// A METRICS frame is a registry snapshot on the wire: reporting nodes ship
// one ahead of their report's BYE (report.go), collector-tree leaves ship
// one ahead of their SUMMARY (collector.go), and the collecting root merges
// them all — counters and gauges add, histograms merge bucket-wise
// (obs.Registry.Merge is commutative and associative, so arrival order
// cannot change the rollup). The merged view lands in the root's own live
// registry, so its /metrics endpoint serves cluster totals, and in
// RunInfo.Rollup for programmatic use.

// MetricsFromSnapshot renders a registry snapshot as the METRICS frame
// payload, instrument names sorted — the codec enforces sortedness, which
// is what makes a snapshot's wire encoding unique.
func MetricsFromSnapshot(node int, s obs.Snapshot) *wire.Metrics {
	m := &wire.Metrics{Node: node}
	for _, name := range sortedKeys(s.Counters) {
		m.Counters = append(m.Counters, wire.MetricValue{Name: name, Value: s.Counters[name]})
	}
	for _, name := range sortedKeys(s.Gauges) {
		m.Gauges = append(m.Gauges, wire.MetricValue{Name: name, Value: s.Gauges[name]})
	}
	hists := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	for _, name := range hists {
		h := s.Histograms[name]
		m.Histograms = append(m.Histograms, wire.MetricHistogram{
			Name: name, Edges: h.Edges, Counts: h.Counts, Count: h.Count, Sum: h.Sum,
		})
	}
	return m
}

// SnapshotFromMetrics inverts MetricsFromSnapshot.
func SnapshotFromMetrics(m *wire.Metrics) obs.Snapshot {
	s := obs.Snapshot{
		Counters:   make(map[string]int64, len(m.Counters)),
		Gauges:     make(map[string]int64, len(m.Gauges)),
		Histograms: make(map[string]obs.HistogramSnapshot, len(m.Histograms)),
	}
	for _, v := range m.Counters {
		s.Counters[v.Name] = v.Value
	}
	for _, v := range m.Gauges {
		s.Gauges[v.Name] = v.Value
	}
	for _, h := range m.Histograms {
		s.Histograms[h.Name] = obs.HistogramSnapshot{
			Edges: h.Edges, Counts: h.Counts, Count: h.Count, Sum: h.Sum,
		}
	}
	return s
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mergeMetrics folds one reported snapshot into the collector's rollup
// registry (created lazily on the first METRICS frame).
func (n *Node) mergeMetrics(s obs.Snapshot) error {
	n.mu.Lock()
	if n.rollup == nil {
		n.rollup = obs.NewRegistry()
	}
	r := n.rollup
	n.mu.Unlock()
	return r.Merge(s)
}

// finishRollup completes a collect's metrics rollup: the accumulated peer
// (and collector-tree leaf) snapshots are merged into this node's own
// registry — /metrics now serves the cluster view — and the merged totals
// are stamped into info.Rollup. With nothing reported and no local
// registry, info.Rollup stays nil.
func (n *Node) finishRollup(info *RunInfo) error {
	n.mu.Lock()
	roll := n.rollup
	n.rollup = nil
	n.mu.Unlock()
	r := n.cfg.Obs.Registry()
	if roll != nil {
		if r == nil {
			// A registry-less collector still reports the cluster totals.
			snap := roll.Snapshot()
			info.Rollup = &snap
			return nil
		}
		if err := r.Merge(roll.Snapshot()); err != nil {
			return err
		}
	}
	if r != nil {
		snap := r.Snapshot()
		info.Rollup = &snap
	}
	return nil
}
