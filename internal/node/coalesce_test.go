package node

import (
	"fmt"
	"testing"

	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/vector"
)

// coalesceFamily is one topology family for the coalescing determinism
// matrix: a channel graph, a placement across nodes, a deterministic
// program set, and the message count one round produces.
type coalesceFamily struct {
	name      string
	g         *graph.Graph
	placement []int
	programs  func(rounds int) map[int]func(*Process) error
	perRound  int
}

func coalesceFamilies() []coalesceFamily {
	return []coalesceFamily{
		{
			// A 4-process chain over 3 nodes: each round sends a wave
			// forward 0→1→2→3 and reflects it back 3→2→1→0.
			name:      "path4",
			g:         graph.Path(4),
			placement: []int{0, 1, 1, 2},
			perRound:  6,
			programs: func(rounds int) map[int]func(*Process) error {
				return map[int]func(*Process) error{
					0: eachRound(rounds, func(p *Process) error {
						return chain(p, send(1), recv(1))
					}),
					1: eachRound(rounds, func(p *Process) error {
						return chain(p, recv(0), send(2), recv(2), send(0))
					}),
					2: eachRound(rounds, func(p *Process) error {
						return chain(p, recv(1), send(3), recv(3), send(1))
					}),
					3: eachRound(rounds, func(p *Process) error {
						return chain(p, recv(2), send(2))
					}),
				}
			},
		},
		{
			// A 5-process star over 3 nodes: the hub polls each leaf in
			// order, one request/reply pair per leaf per round.
			name:      "star5",
			g:         graph.Star(5, 0),
			placement: []int{0, 1, 2, 1, 2},
			perRound:  8,
			programs: func(rounds int) map[int]func(*Process) error {
				programs := map[int]func(*Process) error{
					0: eachRound(rounds, func(p *Process) error {
						for l := 1; l < 5; l++ {
							if err := chain(p, send(l), recv(l)); err != nil {
								return err
							}
						}
						return nil
					}),
				}
				for l := 1; l < 5; l++ {
					programs[l] = eachRound(rounds, func(p *Process) error {
						return chain(p, recv(0), send(0))
					})
				}
				return programs
			},
		},
		{
			// A 4-process complete graph over 2 nodes: every round walks
			// the six unordered pairs in lexicographic order; the lower
			// process sends and the higher replies.
			name:      "complete4",
			g:         graph.Complete(4),
			placement: []int{0, 1, 0, 1},
			perRound:  12,
			programs: func(rounds int) map[int]func(*Process) error {
				pairsOf := func(me int) [][2]int {
					var out [][2]int
					for lo := 0; lo < 4; lo++ {
						for hi := lo + 1; hi < 4; hi++ {
							if lo == me || hi == me {
								out = append(out, [2]int{lo, hi})
							}
						}
					}
					return out
				}
				programs := make(map[int]func(*Process) error, 4)
				for me := 0; me < 4; me++ {
					mine := pairsOf(me)
					programs[me] = eachRound(rounds, func(p *Process) error {
						for _, pr := range mine {
							var err error
							if pr[0] == p.ID() {
								err = chain(p, send(pr[1]), recv(pr[1]))
							} else {
								err = chain(p, recv(pr[0]), send(pr[0]))
							}
							if err != nil {
								return err
							}
						}
						return nil
					})
				}
				return programs
			},
		},
	}
}

// eachRound repeats a per-round body rounds times.
func eachRound(rounds int, body func(*Process) error) func(*Process) error {
	return func(p *Process) error {
		for r := 0; r < rounds; r++ {
			if err := body(p); err != nil {
				return err
			}
		}
		return nil
	}
}

// step is one rendezvous operation in a scripted round.
type step func(*Process) error

func send(q int) step {
	return func(p *Process) error { _, err := p.Send(q); return err }
}

func recv(q int) step {
	return func(p *Process) error { _, err := p.RecvFrom(q); return err }
}

// chain runs steps in order, stopping at the first error.
func chain(p *Process, steps ...step) error {
	for _, s := range steps {
		if err := s(p); err != nil {
			return err
		}
	}
	return nil
}

// collectLogs flattens runCluster results into per-process rendezvous logs.
func collectLogs(results []clusterResult, nprocs int) [][]csp.Record {
	logs := make([][]csp.Record, nprocs)
	for _, r := range results {
		if r.info == nil {
			continue
		}
		for p, l := range r.info.Logs {
			logs[p] = l
		}
	}
	return logs
}

// identicalLogs requires the two arms to agree record for record: same
// operations, same peers, same agreed stamps.
func identicalLogs(a, b [][]csp.Record) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d processes", len(a), len(b))
	}
	for p := range a {
		if len(a[p]) != len(b[p]) {
			return fmt.Errorf("process %d: %d vs %d records", p, len(a[p]), len(b[p]))
		}
		for i := range a[p] {
			x, y := a[p][i], b[p][i]
			if x.Kind != y.Kind || x.Peer != y.Peer || !vector.Eq(x.Stamp, y.Stamp) {
				return fmt.Errorf("process %d record %d: %+v vs %+v", p, i, x, y)
			}
		}
	}
	return nil
}

// TestCoalescingDeterminism runs each topology family twice — once with
// the coalescing writer (the default) and once flushing every frame — and
// requires byte-identical rendezvous logs plus agreement with the
// sequential replay oracle. Batching frames into fewer TCP writes must be
// invisible to the protocol: it may change *when* bytes move, never which
// stamps are agreed.
func TestCoalescingDeterminism(t *testing.T) {
	const rounds = 25
	for _, fam := range coalesceFamilies() {
		t.Run(fam.name, func(t *testing.T) {
			leakCheck(t)
			dec := decomp.Best(fam.g)
			nodes := 0
			for _, n := range fam.placement {
				if n+1 > nodes {
					nodes = n + 1
				}
			}
			run := func(noCoalesce bool) (*csp.Result, [][]csp.Record) {
				res, results, err := runCluster(dec, fam.placement, loopTransports(nodes),
					fam.programs(rounds), Config{NoCoalesce: noCoalesce})
				if err != nil {
					t.Fatalf("noCoalesce=%v: %v", noCoalesce, err)
				}
				for i, r := range results {
					if r.err != nil {
						t.Fatalf("noCoalesce=%v node %d: %v", noCoalesce, i, r.err)
					}
				}
				return res, collectLogs(results, fam.g.N())
			}
			coalesced, coalescedLogs := run(false)
			plain, plainLogs := run(true)

			want := rounds * fam.perRound
			verifyAgainstSequential(t, coalesced, dec, want)
			verifyAgainstSequential(t, plain, dec, want)
			if err := identicalLogs(coalescedLogs, plainLogs); err != nil {
				t.Fatalf("coalesced and unbatched runs diverged: %v", err)
			}
		})
	}
}
