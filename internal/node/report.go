package node

import (
	"fmt"
	"time"

	"syncstamp/internal/csp"
	"syncstamp/internal/wire"
)

// SendReport streams this node's rendezvous logs to the collector node
// after a completed run, over a fresh connection with a RoleReport
// handshake. Each hosted process's log is sent in program order: a send
// becomes a SYN frame (From = owner, To = peer, Vec = stamp), a receive an
// ACK frame (From = peer, To = owner, Vec = stamp), an internal event an
// INTERNAL frame; BYE terminates the report.
func (n *Node) SendReport(collector int, info *RunInfo) error {
	if collector == n.cfg.Node {
		return fmt.Errorf("node %d: cannot report to itself", n.cfg.Node)
	}
	deadline := time.Now().Add(n.cfg.HandshakeTimeout)
	c, err := n.tr.Dial(collector, deadline)
	if err != nil {
		return fmt.Errorf("node %d: report: %w", n.cfg.Node, err)
	}
	defer func() { _ = c.Close() }()
	_ = c.SetDeadline(deadline)
	enc := wire.NewEncoder(c, n.cfg.Dec.D())
	hello := &wire.Frame{Kind: wire.KindHello, Role: wire.RoleReport, Node: n.cfg.Node, Procs: n.local, Digest: n.digest}
	if err := enc.Encode(hello); err != nil {
		return fmt.Errorf("node %d: report handshake: %w", n.cfg.Node, err)
	}
	// The HELLO flushed itself (the collector's handshake read is on a
	// deadline); the log frames batch in the write buffer and go out in
	// large writes, with the final flush below covering the tail.
	enc.SetBatch(true)
	for _, p := range n.local {
		for _, rec := range info.Logs[p] {
			var f *wire.Frame
			switch rec.Kind {
			case csp.RecordSend:
				f = &wire.Frame{Kind: wire.KindSyn, From: p, To: rec.Peer, Vec: rec.Stamp}
			case csp.RecordRecv:
				f = &wire.Frame{Kind: wire.KindAck, From: rec.Peer, To: p, Vec: rec.Stamp}
			case csp.RecordInternal:
				f = &wire.Frame{Kind: wire.KindInternal, Proc: p, Note: fmt.Sprint(rec.Note)}
			default:
				return fmt.Errorf("node %d: process %d log holds unknown record kind %v", n.cfg.Node, p, rec.Kind)
			}
			if err := enc.Encode(f); err != nil {
				return fmt.Errorf("node %d: report process %d: %w", n.cfg.Node, p, err)
			}
		}
	}
	// Ship the node's registry snapshot ahead of the BYE, so the collector
	// can fold it into the cluster rollup. Registry-less nodes skip it.
	if r := n.cfg.Obs.Registry(); r != nil {
		f := &wire.Frame{Kind: wire.KindMetrics, Metrics: MetricsFromSnapshot(n.cfg.Node, r.Snapshot())}
		if err := enc.Encode(f); err != nil {
			return fmt.Errorf("node %d: report metrics: %w", n.cfg.Node, err)
		}
	}
	if err := enc.Encode(&wire.Frame{Kind: wire.KindBye}); err != nil {
		return fmt.Errorf("node %d: report: %w", n.cfg.Node, err)
	}
	if err := enc.Flush(); err != nil {
		return fmt.Errorf("node %d: report: %w", n.cfg.Node, err)
	}
	return nil
}

// Collect receives the peer nodes' log reports, joins them with this
// node's own logs, and reconstructs the global computation with
// csp.Reconstruct — the distributed run's oracle-checkable outcome. It
// must be called on exactly one node, after Run, with that node's RunInfo;
// timeout bounds the whole collection.
func (n *Node) Collect(info *RunInfo, timeout time.Duration) (*csp.Result, error) {
	logs := make([][]csp.Record, n.cfg.Dec.N())
	sink := func(p int, rec csp.Record) error {
		logs[p] = append(logs[p], rec)
		return nil
	}
	if err := n.collectStream(info, timeout, sink); err != nil {
		return nil, err
	}
	if err := n.finishRollup(info); err != nil {
		return nil, err
	}
	res, err := csp.Reconstruct(n.cfg.Dec, logs)
	if err != nil {
		return nil, fmt.Errorf("node %d: %w", n.cfg.Node, err)
	}
	return res, nil
}

// collectStream is the collect core both paths share: it feeds this node's
// own logs and every peer report through sink record by record, each
// process's records in program order, retaining nothing itself. Collect's
// sink appends into per-process slices for whole-trace reconstruction;
// CollectTree's routes records straight into a sharded verifier tree, so
// the collector's memory stays O(shard) regardless of run size.
func (n *Node) collectStream(info *RunInfo, timeout time.Duration, sink func(proc int, rec csp.Record) error) error {
	n.start()
	seen := make([]bool, n.cfg.Dec.N())
	reported := make([]bool, n.nodes)
	reported[n.cfg.Node] = true
	for _, p := range n.local {
		seen[p] = true
		for _, rec := range info.Logs[p] {
			if err := sink(p, rec); err != nil {
				return err
			}
		}
	}
	// Excluded peers never report: their processes count as reported with
	// empty logs. (Degraded-run reconstruction is only oracle-complete when
	// the excluded node committed no rendezvous before it was lost; a node
	// that committed and then crashed must come back from its journal.)
	want := n.nodes
	for _, j := range info.Excluded {
		if j == n.cfg.Node {
			continue
		}
		want--
		reported[j] = true
		for p, host := range n.cfg.Placement {
			if host == j {
				seen[p] = true
			}
		}
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for got := 1; got < want; got++ {
		var rc *reportConn
		select {
		case rc = <-n.reports:
		case <-n.stop:
			if err := n.failure(); err != nil {
				return err
			}
			return ErrStopped
		case <-timer.C:
			return fmt.Errorf("node %d: %d of %d reports within %v, still waiting on node(s) %v",
				n.cfg.Node, got-1, want-1, timeout, missingNodes(reported))
		}
		if rc.node >= 0 && rc.node < len(reported) {
			reported[rc.node] = true
		}
		if err := n.readReport(rc, sink, seen); err != nil {
			_ = rc.c.Close()
			return err
		}
		_ = rc.c.Close()
	}
	for p, ok := range seen {
		if !ok {
			return fmt.Errorf("node %d: no report covered process %d", n.cfg.Node, p)
		}
	}
	return nil
}

// missingNodes lists the straggler nodes a collect timeout is still waiting
// on, so the error names them instead of only counting.
func missingNodes(reported []bool) []int {
	var m []int
	for j, ok := range reported {
		if !ok {
			m = append(m, j)
		}
	}
	return m
}

// readReport streams one report into sink, frame by frame, without
// buffering the peer's logs.
func (n *Node) readReport(rc *reportConn, sink func(proc int, rec csp.Record) error, seen []bool) error {
	for _, p := range rc.procs {
		if p < 0 || p >= len(seen) {
			return fmt.Errorf("node %d: report from node %d claims process %d, out of range", n.cfg.Node, rc.node, p)
		}
		if seen[p] {
			return fmt.Errorf("node %d: report from node %d claims process %d, already reported", n.cfg.Node, rc.node, p)
		}
		seen[p] = true
	}
	owns := func(p int) bool {
		return p >= 0 && p < len(n.cfg.Placement) && n.cfg.Placement[p] == rc.node
	}
	for {
		f, err := rc.dec.Decode()
		if err != nil {
			return fmt.Errorf("node %d: report from node %d: %w", n.cfg.Node, rc.node, err)
		}
		switch f.Kind {
		case wire.KindSyn:
			if !owns(f.From) {
				return fmt.Errorf("node %d: report from node %d logs a send by foreign process %d", n.cfg.Node, rc.node, f.From)
			}
			if err := sink(f.From, csp.Record{Kind: csp.RecordSend, Peer: f.To, Stamp: f.Vec}); err != nil {
				return err
			}
		case wire.KindAck:
			if !owns(f.To) {
				return fmt.Errorf("node %d: report from node %d logs a receive by foreign process %d", n.cfg.Node, rc.node, f.To)
			}
			if err := sink(f.To, csp.Record{Kind: csp.RecordRecv, Peer: f.From, Stamp: f.Vec}); err != nil {
				return err
			}
		case wire.KindInternal:
			if !owns(f.Proc) {
				return fmt.Errorf("node %d: report from node %d logs an internal event of foreign process %d", n.cfg.Node, rc.node, f.Proc)
			}
			if err := sink(f.Proc, csp.Record{Kind: csp.RecordInternal, Note: f.Note}); err != nil {
				return err
			}
		case wire.KindMetrics:
			if f.Metrics == nil {
				return fmt.Errorf("node %d: empty METRICS frame in report from node %d", n.cfg.Node, rc.node)
			}
			if err := n.mergeMetrics(SnapshotFromMetrics(f.Metrics)); err != nil {
				return fmt.Errorf("node %d: metrics from node %d: %w", n.cfg.Node, rc.node, err)
			}
		case wire.KindBye:
			return nil
		default:
			return fmt.Errorf("node %d: unexpected %v frame in report from node %d", n.cfg.Node, f.Kind, rc.node)
		}
	}
}
