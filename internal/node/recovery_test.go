package node

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/obs"
	"syncstamp/internal/vector"
	"syncstamp/internal/wire"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.journal")
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || j.Restarts() != 0 {
		t.Fatalf("fresh journal replayed %d records, %d restarts", len(recs), j.Restarts())
	}
	want := []JournalRecord{
		{Kind: journalRecv, Proc: 1, Peer: 0, Seq: 1, Stamp: []int{1, 0}},
		{Kind: journalSend, Proc: 1, Peer: 0, Seq: 1, Stamp: []int{1, 1}},
		{Kind: journalInternal, Proc: 1, Note: "checkpoint"},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// First reopen: the three records come back and a restart is counted.
	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Kind != want[i].Kind || rec.Proc != want[i].Proc || rec.Seq != want[i].Seq {
			t.Fatalf("record %d: got %+v, want %+v", i, rec, want[i])
		}
	}
	if j2.Restarts() != 1 {
		t.Fatalf("restarts after first reopen = %d, want 1", j2.Restarts())
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// Second reopen: restart markers accumulate across incarnations.
	j3, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Restarts() != 2 {
		t.Fatalf("restarts after second reopen = %d, want 2", j3.Restarts())
	}
}

func TestJournalTruncatedTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.journal")
	full := `{"kind":"recv","proc":0,"peer":1,"seq":1,"stamp":[1,0]}` + "\n"
	partial := `{"kind":"send","proc":0,"pee` // crash mid-append: no newline
	if err := os.WriteFile(path, []byte(full+partial), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != journalRecv {
		t.Fatalf("replayed %+v, want the single complete record", recs)
	}
	// The fragment is truncated away, so the next append starts at a record
	// boundary and survives a further replay.
	if err := j.Append(JournalRecord{Kind: journalInternal, Proc: 0, Note: "after crash"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Note != "after crash" {
		t.Fatalf("after truncate+append replayed %+v", recs)
	}
}

// TestJournalTornGroupBatchRecovery crashes a group-committed journal in
// the worst place: a multi-record batch goes out in one write, and the
// "crash" cuts the file mid-record inside that batch. Recovery must keep
// exactly the complete-line prefix — every record before the tear — and the
// journal must keep working from the restored boundary.
func TestJournalTornGroupBatchRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.journal")
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	// Concurrent appenders so the group-commit leader actually pools
	// records: while one fsync is in flight the rest queue behind it and
	// land together in a single multi-record write.
	const appenders = 8
	const perAppender = 4
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perAppender; i++ {
				rec := JournalRecord{Kind: journalSend, Proc: a, Peer: 0,
					Seq: uint64(i + 1), Stamp: []int{a, i}}
				if err := j.Append(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	st := j.Stats()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	const total = appenders * perAppender
	if st.Appends != total {
		t.Fatalf("journal counted %d appends, want %d", st.Appends, total)
	}
	if st.Syncs >= st.Appends {
		t.Fatalf("%d fsyncs for %d concurrent appends: group commit never batched", st.Syncs, st.Appends)
	}

	// Tear the file mid-record: cut three bytes into the final line, the
	// shape a power cut leaves when it lands inside a batch write.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if raw[len(raw)-1] != '\n' {
		t.Fatal("journal does not end at a record boundary")
	}
	lastStart := strings.LastIndexByte(string(raw[:len(raw)-1]), '\n') + 1
	cut := lastStart + 3
	complete := strings.Count(string(raw[:cut]), "\n")
	if complete != total-1 {
		t.Fatalf("cut leaves %d complete records, want %d", complete, total-1)
	}
	if err := os.Truncate(path, int64(cut)); err != nil {
		t.Fatal(err)
	}

	// Recovery: the torn record is gone, everything before it survives.
	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != complete {
		t.Fatalf("replayed %d records after the tear, want %d", len(recs), complete)
	}
	if j2.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1", j2.Restarts())
	}
	// The restored boundary is a real record boundary: a post-crash append
	// must survive a further replay intact.
	if err := j2.Append(JournalRecord{Kind: journalInternal, Proc: 0, Note: "after tear"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != complete+1 || recs[complete].Note != "after tear" {
		t.Fatalf("after tear+append replayed %d records, tail %+v", len(recs), recs[len(recs)-1])
	}
}

// TestJournalRestoreResume journals a full run, then rebuilds a fresh node
// from the replayed records and checks Restore reproduces the per-process
// clocks, logs, and sequence counters the crashed incarnation held.
func TestJournalRestoreResume(t *testing.T) {
	leakCheck(t)
	g := graph.Path(2)
	dec := decomp.Best(g)
	dir := t.TempDir()
	journals := make([]*Journal, 2)
	for i := range journals {
		j, recs, err := OpenJournal(filepath.Join(dir, "n"+string(rune('0'+i))+".journal"))
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 0 {
			t.Fatalf("fresh journal %d not empty", i)
		}
		journals[i] = j
	}
	const rounds = 5
	transports := loopTransports(2)
	results := make([]clusterResult, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := New(Config{
				Node: i, Placement: []int{0, 1}, Dec: dec,
				Recovery: &RecoveryConfig{OnPeerLoss: PeerLossWait, Journal: journals[i]},
			}, transports[i])
			if err != nil {
				results[i].err = err
				return
			}
			defer n.Close()
			info, err := n.Run(pingPong(rounds))
			results[i] = clusterResult{info: info, err: err}
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("node %d: %v", i, r.err)
		}
		if err := journals[i].Close(); err != nil {
			t.Fatal(err)
		}
	}

	// "Restart" node 1: replay its journal into a fresh node.
	j, recs, err := OpenJournal(filepath.Join(dir, "n1.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1", j.Restarts())
	}
	wantOps := 2 * rounds // each round is one recv + one send on proc 1
	if len(recs) != wantOps {
		t.Fatalf("journal replayed %d records, want %d", len(recs), wantOps)
	}
	l := NewLoop(2)
	n, err := New(Config{
		Node: 1, Placement: []int{0, 1}, Dec: dec,
		Recovery: &RecoveryConfig{OnPeerLoss: PeerLossWait, Journal: j},
	}, l.Transport(1))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	counts, err := n.Restore(recs)
	if err != nil {
		t.Fatal(err)
	}
	if counts[1] != wantOps {
		t.Fatalf("Restore counts = %v, want %d ops for process 1", counts, wantOps)
	}
	st := n.restored[1]
	if st == nil {
		t.Fatal("no resume state for process 1")
	}
	if len(st.log) != wantOps || st.seq != rounds {
		t.Fatalf("resume state: %d log records (want %d), seq %d (want %d)",
			len(st.log), wantOps, st.seq, rounds)
	}
	// The rebuilt log must equal the live run's, stamp for stamp, and the
	// rebuilt clock must sit exactly at the last committed stamp.
	live := results[1].info.Logs[1]
	if len(live) != len(st.log) {
		t.Fatalf("restored %d log records, live run had %d", len(st.log), len(live))
	}
	for i := range live {
		if live[i].Kind != st.log[i].Kind || live[i].Peer != st.log[i].Peer {
			t.Fatalf("log record %d: restored %+v, live %+v", i, st.log[i], live[i])
		}
		if live[i].Kind != csp.RecordInternal && !vector.Eq(live[i].Stamp, st.log[i].Stamp) {
			t.Fatalf("log record %d: restored stamp %v, live %v", i, st.log[i].Stamp, live[i].Stamp)
		}
	}
	// Dial epochs stride past everything the previous incarnation used.
	n.mu.Lock()
	base := n.baseEpoch
	n.mu.Unlock()
	if base != 1<<16 {
		t.Fatalf("baseEpoch = %d, want %d", base, 1<<16)
	}
}

func TestRestoreRejectsForeignProcess(t *testing.T) {
	g := graph.Path(2)
	dec := decomp.Best(g)
	path := filepath.Join(t.TempDir(), "node.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	l := NewLoop(2)
	n, err := New(Config{
		Node: 1, Placement: []int{0, 1}, Dec: dec,
		Recovery: &RecoveryConfig{OnPeerLoss: PeerLossWait, Journal: j},
	}, l.Transport(1))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	_, err = n.Restore([]JournalRecord{{Kind: journalRecv, Proc: 0, Peer: 1, Seq: 1, Stamp: []int{1, 0}}})
	if err == nil || !strings.Contains(err.Error(), "not hosted here") {
		t.Fatalf("foreign-process journal accepted: %v", err)
	}
}

// TestLateAckAndUnexpectedKindsCounted drives node 0 against a hand-rolled
// wire peer that misbehaves before cooperating: an unsolicited ACK no sender
// is parked for and an INTERNAL frame on the data stream. Both must be
// counted and discarded — not kill the run — and the genuine rendezvous that
// follows must still complete.
func TestLateAckAndUnexpectedKindsCounted(t *testing.T) {
	leakCheck(t)
	g := graph.Path(2)
	dec := decomp.Best(g)
	placement := []int{0, 1}
	l := NewLoop(2)
	o := obs.New()

	n, err := New(Config{Node: 0, Placement: placement, Dec: dec, Obs: o}, l.Transport(0))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	peerErr := make(chan error, 1)
	go func() {
		peerErr <- func() error {
			// Fake node 1: dial node 0 (higher dials lower) and speak raw wire.
			c, err := l.Transport(1).Dial(0, time.Now().Add(5*time.Second))
			if err != nil {
				return err
			}
			defer c.Close()
			enc := wire.NewEncoder(c, dec.D())
			wdec := wire.NewDecoder(c, dec.D())
			digest := wire.Digest(dec, placement)
			if err := enc.Encode(&wire.Frame{Kind: wire.KindHello, Role: wire.RoleData, Node: 1, Procs: []int{1}, Digest: digest}); err != nil {
				return err
			}
			if _, err := wdec.Decode(); err != nil { // node 0's HELLO reply
				return err
			}
			// Misbehave: a late ACK (no waiter is parked for seq 99) and an
			// INTERNAL frame, which never belongs on a data stream.
			if err := enc.Encode(&wire.Frame{Kind: wire.KindAck, From: 1, To: 0, Seq: 99, Vec: core.NewClock(1, dec).Current()}); err != nil {
				return err
			}
			if err := enc.Encode(&wire.Frame{Kind: wire.KindInternal, Node: 1, Vec: core.NewClock(1, dec).Current()}); err != nil {
				return err
			}
			// Now cooperate: answer proc 0's SYN with the Figure 5 merge.
			clock := core.NewClock(1, dec)
			f, err := wdec.Decode()
			if err != nil {
				return err
			}
			if f.Kind != wire.KindSyn {
				return err
			}
			stamp, err := clock.Merge(f.Vec, 0)
			if err != nil {
				return err
			}
			if err := enc.Encode(&wire.Frame{Kind: wire.KindAck, From: 1, To: 0, Seq: f.Seq, Vec: stamp}); err != nil {
				return err
			}
			if err := enc.Encode(&wire.Frame{Kind: wire.KindBye}); err != nil {
				return err
			}
			_, _ = wdec.Decode() // node 0's BYE
			return nil
		}()
	}()

	info, err := n.Run(map[int]func(*Process) error{
		0: func(p *Process) error {
			_, err := p.Send(1)
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-peerErr; err != nil {
		t.Fatalf("fake peer: %v", err)
	}
	if info.Dropped != 2 {
		t.Fatalf("info.Dropped = %d, want 2 (late ACK + INTERNAL frame)", info.Dropped)
	}
	if got := o.Registry().Counter(obs.MetricDroppedFrames).Value(); got != 2 {
		t.Fatalf("%s = %d, want 2", obs.MetricDroppedFrames, got)
	}
}

// TestDialClassification checks TCPTransport.Dial's fatal-vs-transient
// split: a malformed address fails immediately instead of burning the
// deadline, while a refused port retries (counting each retry) until the
// deadline expires.
func TestDialClassification(t *testing.T) {
	tr := &TCPTransport{Retries: &obs.Counter{}}

	// Malformed port: net.AddrError, fatal, returns well before the deadline.
	tr.SetPeers([]string{"127.0.0.1:notaport"})
	start := time.Now()
	_, err := tr.Dial(0, time.Now().Add(5*time.Second))
	if err == nil {
		t.Fatal("malformed address dialed successfully")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("fatal dial burned %v of the deadline", elapsed)
	}
	if got := tr.Retries.Value(); got != 0 {
		t.Fatalf("fatal dial counted %d retries, want 0", got)
	}

	// A refused port is transient: retried with backoff until the deadline.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close() // nothing listens here anymore
	tr.SetPeers([]string{addr})
	_, err = tr.Dial(0, time.Now().Add(300*time.Millisecond))
	if err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
	if !strings.Contains(err.Error(), "deadline exceeded") {
		t.Fatalf("refused dial classified fatal: %v", err)
	}
	if got := tr.Retries.Value(); got == 0 {
		t.Fatal("refused dial counted no retries")
	}

	// Out-of-range peer index is immediately fatal.
	if _, err := tr.Dial(7, time.Now().Add(time.Second)); err == nil {
		t.Fatal("out-of-range dial succeeded")
	}
}
