package node

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
)

// benchMatching builds a P-pair matching topology split across two nodes:
// even processes (the senders) on node 0, odd (the receivers) on node 1.
func benchMatching(pairs int) (*decomp.Decomposition, []int) {
	g := graph.New(2 * pairs)
	for i := 0; i < pairs; i++ {
		g.AddEdge(2*i, 2*i+1)
	}
	placement := make([]int, 2*pairs)
	for p := range placement {
		placement[p] = p % 2
	}
	return decomp.Best(g), placement
}

// runBenchCluster drives one 2-node Loop run and reports errors on b.
func runBenchCluster(b *testing.B, dec *decomp.Decomposition, placement []int,
	programs map[int]func(*Process) error, coalesce bool) {
	b.Helper()
	ts := loopTransports(2)
	nodes := make([]*Node, 2)
	for i := range nodes {
		n, err := New(Config{Node: i, Placement: placement, Dec: dec, NoCoalesce: !coalesce}, ts[i])
		if err != nil {
			b.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
	}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = nodes[i].Run(programs)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			b.Fatalf("node %d: %v", i, err)
		}
	}
}

// benchPrograms is the tsbench workload shape: every pair ping-pongs rounds
// times concurrently over the single inter-node connection.
func benchPrograms(pairs, rounds int) map[int]func(*Process) error {
	programs := make(map[int]func(*Process) error, 2*pairs)
	for i := 0; i < pairs; i++ {
		sender, receiver := 2*i, 2*i+1
		programs[sender] = func(p *Process) error {
			for k := 0; k < rounds; k++ {
				if _, err := p.Send(receiver); err != nil {
					return err
				}
			}
			return nil
		}
		programs[receiver] = func(p *Process) error {
			for k := 0; k < rounds; k++ {
				if _, err := p.RecvFrom(sender); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return programs
}

// BenchmarkLoopRendezvous measures the full remote rendezvous round trip —
// SYN encode, pipe, merge, ACK, adopt — over the in-memory Loop transport
// with the coalescing writer on; ns/op is per message.
func BenchmarkLoopRendezvous(b *testing.B) {
	const pairs = 8
	dec, placement := benchMatching(pairs)
	rounds := b.N/pairs + 1
	b.ReportAllocs()
	b.ResetTimer()
	runBenchCluster(b, dec, placement, benchPrograms(pairs, rounds), true)
	b.StopTimer()
}

// BenchmarkLoopRendezvousNoCoalesce is the flush-per-frame baseline arm.
func BenchmarkLoopRendezvousNoCoalesce(b *testing.B) {
	const pairs = 8
	dec, placement := benchMatching(pairs)
	rounds := b.N/pairs + 1
	b.ReportAllocs()
	b.ResetTimer()
	runBenchCluster(b, dec, placement, benchPrograms(pairs, rounds), false)
	b.StopTimer()
}

// benchJournalAppend drives b.N appends through a journal from workers
// concurrent goroutines; ns/op is per committed record.
func benchJournalAppend(b *testing.B, each bool, workers int) {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	j.SetSyncEach(each)
	rec := JournalRecord{Kind: journalInternal, Proc: 1, Note: "bench"}
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := b.N / workers
		if w < b.N%workers {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := j.Append(rec); err != nil {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	b.StopTimer()
	st := j.Stats()
	b.ReportMetric(float64(st.Appends)/float64(st.Syncs), "records/fsync")
	if err := os.Remove(path); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkJournalAppendGroupCommit(b *testing.B) { benchJournalAppend(b, false, 8) }

func BenchmarkJournalAppendSyncEach(b *testing.B) { benchJournalAppend(b, true, 8) }

// TestNodeHotPathAllocBudget pins the per-message allocation count of the
// full distributed rendezvous path. The budget is deliberately loose — the
// path spans goroutine handoffs, journal-free protocol work, and log
// growth — but tight enough that an accidental per-frame buffer or
// per-vector scratch slipping into the hot path (tens of allocations per
// message) fails the test rather than silently regressing throughput.
func TestNodeHotPathAllocBudget(t *testing.T) {
	const (
		pairs    = 4
		rounds   = 200
		budget   = 100.0
		messages = pairs * rounds
	)
	dec, placement := benchMatching(pairs)
	programs := benchPrograms(pairs, rounds)

	// Warm run to populate connection state, then measure.
	run := func() {
		ts := loopTransports(2)
		nodes := make([]*Node, 2)
		for i := range nodes {
			n, err := New(Config{Node: i, Placement: placement, Dec: dec}, ts[i])
			if err != nil {
				t.Fatal(err)
			}
			defer n.Close()
			nodes[i] = n
		}
		errs := make([]error, 2)
		var wg sync.WaitGroup
		for i := range nodes {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = nodes[i].Run(programs)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
		}
	}
	run()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	run()
	runtime.ReadMemStats(&after)
	perMsg := float64(after.Mallocs-before.Mallocs) / float64(messages)
	if perMsg > budget {
		t.Fatalf("distributed rendezvous allocates %.1f objects per message, budget %.0f", perMsg, budget)
	}
	t.Logf("distributed rendezvous: %.1f allocs per message (budget %.0f)", perMsg, budget)
}
