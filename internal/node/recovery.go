package node

import (
	"errors"
	"fmt"
	"time"

	tssync "syncstamp/internal/sync"
	"syncstamp/internal/vector"
	"syncstamp/internal/wire"
)

// ErrPeerLost is returned by Send/RecvFrom when the rendezvous partner's
// node has been excluded from the run (OnPeerLoss = PeerLossExclude and the
// reconnect window expired). Programs that opt into degraded operation treat
// it as "this partner is gone"; the surviving topology keeps stamping.
var ErrPeerLost = errors.New("node: peer lost")

// PeerLossPolicy selects what a node does when a data connection dies and
// cannot be re-established within the reconnect window.
type PeerLossPolicy int

const (
	// PeerLossAbort fails the run as soon as a data connection dies. This is
	// the fail-stop behavior of the non-recovering runtime: retransmission
	// and dedup still mask individual lost frames, but a broken connection
	// is fatal.
	PeerLossAbort PeerLossPolicy = iota
	// PeerLossWait redials (or awaits a redial) for ReconnectWindow; only an
	// expired window fails the run. A crashed peer that restarts from its
	// journal inside the window resumes the session transparently.
	PeerLossWait
	// PeerLossExclude behaves like PeerLossWait until the window expires,
	// then removes the peer from the active run instead of failing: its
	// nodes' vector components freeze, rendezvous parked on it return
	// ErrPeerLost, and the surviving topology keeps stamping.
	PeerLossExclude
)

// String names the policy (the tsnode -on-peer-loss vocabulary).
func (p PeerLossPolicy) String() string {
	switch p {
	case PeerLossAbort:
		return "abort"
	case PeerLossWait:
		return "wait"
	case PeerLossExclude:
		return "exclude"
	default:
		return fmt.Sprintf("PeerLossPolicy(%d)", int(p))
	}
}

// ParsePeerLossPolicy parses the tsnode -on-peer-loss vocabulary.
func ParsePeerLossPolicy(s string) (PeerLossPolicy, error) {
	switch s {
	case "abort":
		return PeerLossAbort, nil
	case "wait":
		return PeerLossWait, nil
	case "exclude":
		return PeerLossExclude, nil
	default:
		return 0, fmt.Errorf("node: unknown peer-loss policy %q (want abort, wait, or exclude)", s)
	}
}

// Default recovery tunables applied when RecoveryConfig leaves them zero.
const (
	DefaultRetransmitMin = 25 * time.Millisecond
	DefaultRetransmitMax = 1 * time.Second
)

// RecoveryConfig turns on the loss-tolerant protocol: sequence-numbered
// SYN/ACK retransmission with capped exponential backoff, idempotent dedup
// on receive, peer reconnection with session resume, and (optionally) a
// write-ahead journal for crash recovery. With recovery enabled every
// connection encodes vectors self-contained (dense), because delta
// compression assumes a lossless FIFO stream.
type RecoveryConfig struct {
	// OnPeerLoss selects the degradation policy for a connection that stays
	// dead past ReconnectWindow.
	OnPeerLoss PeerLossPolicy
	// RetransmitMin is the initial (and minimum) retransmission backoff.
	// Zero means DefaultRetransmitMin.
	RetransmitMin time.Duration
	// RetransmitMax caps the exponential backoff. Zero means
	// DefaultRetransmitMax.
	RetransmitMax time.Duration
	// ReconnectWindow bounds how long a lost peer may stay unreachable
	// before OnPeerLoss applies. Zero means the handshake timeout.
	ReconnectWindow time.Duration
	// Journal, when non-nil, is the open crash-recovery journal: every
	// committed rendezvous is appended (and fsynced) before its ACK leaves
	// the node, so a restarted node replays it with Restore and resumes.
	Journal *Journal
	// Async, when non-nil, enables the asynchronous-substrate mode: the
	// α-style synchronizer of internal/sync replaces the fixed
	// RetransmitMin/Max backoff with a per-peer adaptive RTO (Jacobson RTT
	// estimator, seeded-jitter capped exponential backoff), piggybacks
	// cumulative safe counters on SYN/ACK frames, and drives the per-peer
	// health FSM whose suspect state applies OnPeerLoss without waiting
	// for a connection to die. See async.go. RetransmitMin/Max still govern
	// the reconnect dial backoff; the rendezvous retransmission timer is
	// the synchronizer's.
	Async *tssync.Config
}

// dedupEntry is the receiver-side dedup state for one remote sender
// process. Because Send blocks until its ACK, each sender has at most one
// rendezvous outstanding, so a single slot per sender is complete: enq is
// the highest sequence number accepted into a mailbox, and (ackSeq,
// ackFrom, stamp) caches the last committed merge so a retransmitted SYN
// whose ACK was lost is answered from the cache instead of merged twice.
type dedupEntry struct {
	enq     uint64
	ackSeq  uint64
	ackFrom int
	stamp   vector.V
}

// dedupCheck classifies an incoming SYN: deliver it, re-ACK it from the
// merge cache (duplicate whose ACK was lost), or silently drop it
// (duplicate still parked in a mailbox). Returns the frame to send back,
// if any, and whether to deliver.
func (n *Node) dedupCheck(f *wire.Frame) (reack *wire.Frame, deliver bool) {
	n.mu.Lock()
	e := &n.dedup[f.From]
	deliver = f.Seq > e.enq
	if deliver {
		e.enq = f.Seq
	} else if f.Seq == e.ackSeq && e.stamp != nil {
		reack = &wire.Frame{Kind: wire.KindAck, From: e.ackFrom, To: f.From, Seq: e.ackSeq, Vec: e.stamp}
	}
	n.mu.Unlock()
	if !deliver {
		n.noteDedup()
	}
	return reack, deliver
}

// noteMerged caches a committed merge for re-ACKing duplicates.
func (n *Node) noteMerged(from int, seq uint64, by int, stamp vector.V) {
	n.mu.Lock()
	e := &n.dedup[from]
	e.ackSeq = seq
	e.ackFrom = by
	e.stamp = stamp.Clone()
	if seq > e.enq {
		e.enq = seq
	}
	n.mu.Unlock()
}

// noteDedup records one suppressed duplicate frame.
func (n *Node) noteDedup() {
	n.deduped.Add(1)
	n.ins.DedupFrames.Add(1)
}

// sendToPeer writes one frame on the current connection to a peer node.
func (n *Node) sendToPeer(node int, f *wire.Frame) error {
	pc, err := n.connTo(node)
	if err != nil {
		return err
	}
	return pc.send(f)
}

// errByeUndelivered is the recovery cause when a session must resume only
// to re-announce this node's lost BYE.
var errByeUndelivered = errors.New("bye undelivered")

// peerDone reports whether nothing further is owed between this node and
// peer j: the peer announced completion AND our own BYE reached it, or the
// peer was excluded. Caller holds n.mu.
func (n *Node) peerDone(j int) bool {
	return (n.byeSeen[j] && !n.byeFailed[j]) || n.excluded[j]
}

// noteByeFailed records that this node's BYE did not reach peer j (write
// error, or no connection at all) and, if no reconnect is already being
// driven, starts one: the peer's end-of-run barrier is parked on that BYE,
// and under the dial convention the peer may be waiting passively.
func (n *Node) noteByeFailed(j int) {
	n.mu.Lock()
	n.byeFailed[j] = true
	dead := n.conns[j] == nil
	n.mu.Unlock()
	if dead {
		n.spawnRecovery(j, errByeUndelivered)
	}
	// A live connection means the failure raced a reconnect (or the conn is
	// dying and its read loop is about to notice); either path re-announces.
}

// spawnRecovery starts recoverPeer for a peer unless one is already
// running, the peer is finished, or the node is stopping.
func (n *Node) spawnRecovery(peer int, cause error) {
	n.mu.Lock()
	skip := n.recovering[peer] || n.peerDone(peer)
	if !skip {
		n.recovering[peer] = true
	}
	n.mu.Unlock()
	if skip || n.stopped() {
		return
	}
	n.recoveryWG.Add(1)
	go n.recoverPeer(peer, cause)
}

// peerLost handles the death of a data connection under recovery: the
// connection is retired and, unless nothing is owed either way (peer's BYE
// seen and ours delivered), the peer was excluded, or the policy is abort,
// a recovery goroutine redials (or awaits the peer's redial) for
// ReconnectWindow.
func (n *Node) peerLost(pc *peerConn, cause error) {
	n.mu.Lock()
	lost := n.conns[pc.node] == pc
	var finished bool
	if lost {
		n.conns[pc.node] = nil
		n.retired = append(n.retired, pc)
		finished = n.peerDone(pc.node)
	}
	n.mu.Unlock()
	if !lost {
		// Already replaced by a reconnect; nothing was lost.
		return
	}
	_ = pc.c.Close()
	if finished || n.stopped() {
		return
	}
	// A live peer just vanished: snapshot the flight recorder now, while
	// the ring still holds the events leading up to the loss. (fail takes
	// its own dump; this covers losses recovery goes on to survive.)
	n.DumpFlight()
	if n.rec.OnPeerLoss == PeerLossAbort {
		n.fail(fmt.Errorf("node %d: connection to node %d: %w", n.cfg.Node, pc.node, cause))
		return
	}
	n.spawnRecovery(pc.node, cause)
}

// recoverPeer tries to restore the session with a lost peer within the
// reconnect window, then applies the peer-loss policy. The lower-numbered
// side waits passively (mesh convention: higher dials lower); the higher
// side actively redials with a fresh epoch.
func (n *Node) recoverPeer(peer int, cause error) {
	defer func() {
		n.mu.Lock()
		n.recovering[peer] = false
		n.mu.Unlock()
		n.recoveryWG.Done()
	}()
	window := n.rec.ReconnectWindow
	deadline := time.Now().Add(window)
	backoff := n.rec.RetransmitMin
	for time.Now().Before(deadline) && !n.stopped() {
		n.mu.Lock()
		restored := n.conns[peer] != nil
		finished := n.peerDone(peer)
		n.mu.Unlock()
		if restored || finished {
			return
		}
		if n.cfg.Node > peer {
			if err := n.dialPeer(peer, n.nextEpoch(peer)); err == nil {
				return
			}
		}
		timer := time.NewTimer(backoff)
		select {
		case <-timer.C:
		case <-n.stop:
			timer.Stop()
			return
		}
		backoff *= 2
		if backoff > n.rec.RetransmitMax {
			backoff = n.rec.RetransmitMax
		}
	}
	n.mu.Lock()
	restored := n.conns[peer] != nil
	finished := n.peerDone(peer)
	n.mu.Unlock()
	if restored || finished || n.stopped() {
		return
	}
	switch n.rec.OnPeerLoss {
	case PeerLossExclude:
		n.excludePeer(peer)
	default:
		n.fail(fmt.Errorf("node %d: node %d unreachable for %v: %w", n.cfg.Node, peer, window, cause))
	}
}

// nextEpoch allocates the HELLO epoch for a redial toward a peer.
func (n *Node) nextEpoch(peer int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.epochs[peer]++
	return n.epochs[peer]
}

// excludePeer removes a node from the active run: rendezvous parked on its
// processes return ErrPeerLost, the end-of-run barrier stops waiting for
// its BYE, and Collect stops expecting its report. The excluded node's
// star/triangle components simply freeze — every surviving clock keeps the
// Figure 5 discipline on the components it still advances.
func (n *Node) excludePeer(peer int) {
	n.mu.Lock()
	first := !n.excluded[peer]
	if first {
		n.excluded[peer] = true
		close(n.exclCh)
		n.exclCh = make(chan struct{})
	}
	n.mu.Unlock()
	if first {
		n.notePeerEvent()
	}
}

// isExcluded reports whether a peer node has been excluded.
func (n *Node) isExcluded(node int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return node >= 0 && node < len(n.excluded) && n.excluded[node]
}

// exclusionCh returns the current exclusion broadcast channel: it is closed
// (and replaced) every time a peer is excluded, waking parked rendezvous so
// they can re-check their partner.
func (n *Node) exclusionCh() chan struct{} {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.exclCh
}

// notePeerEvent wakes the end-of-run barrier.
func (n *Node) notePeerEvent() {
	select {
	case n.peerEvent <- struct{}{}:
	default:
	}
}

// excludedList snapshots the excluded peers, ascending.
func (n *Node) excludedList() []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []int
	for j, x := range n.excluded {
		if x {
			out = append(out, j)
		}
	}
	return out
}

// awaitPeersDone is the end-of-run barrier under recovery: instead of
// tying completion to reader-goroutine lifetimes (readers die and are
// replaced across reconnects), it waits until every peer either announced
// completion with BYE or was excluded.
func (n *Node) awaitPeersDone() {
	for {
		n.mu.Lock()
		done := true
		for j := 0; j < n.nodes; j++ {
			if j == n.cfg.Node || n.peerDone(j) {
				continue
			}
			done = false
			break
		}
		n.mu.Unlock()
		if done {
			return
		}
		select {
		case <-n.peerEvent:
		case <-n.stop:
			return
		}
	}
}
