package node

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"syscall"
	"time"

	"syncstamp/internal/obs"
	tssync "syncstamp/internal/sync"
)

// Transport establishes the duplex byte streams a Node speaks the wire
// protocol over: one stream per peer node for live rendezvous traffic, plus
// ad-hoc streams for log reports. Implementations must be safe for
// concurrent use.
type Transport interface {
	// Dial connects to the given node, retrying transient failures until
	// the deadline (peers start in arbitrary order, so the first attempts
	// may land before the peer listens).
	Dial(node int, deadline time.Time) (net.Conn, error)
	// Accept returns the next inbound stream. It unblocks with an error
	// after Close.
	Accept() (net.Conn, error)
	// Close stops listening and unblocks Accept. Established streams are
	// not touched.
	Close() error
}

// TCPTransport is the production transport: length-prefixed wire frames
// over TCP, one listener per node, dial with retry and exponential backoff.
type TCPTransport struct {
	ln net.Listener

	// Retries, when non-nil, counts failed dial attempts that were retried
	// (obs.MetricDialRetries). Set it before the node starts connecting.
	Retries *obs.Counter

	// Backoff, when non-nil, supplies the dial retry delays (seeded jitter,
	// capped exponential). Set it before the node starts connecting; when
	// nil, Dial lazily builds one over the default bounds with a seed drawn
	// from the listener's port, so concurrent dialers on one host do not
	// retry in lockstep.
	Backoff *tssync.Backoff

	mu    sync.Mutex
	addrs []string
}

// Backoff bounds for TCPTransport dial retries.
const (
	dialBackoffMin = 25 * time.Millisecond
	dialBackoffMax = 500 * time.Millisecond
)

// NewTCPTransport starts listening on the given address. Use a ":0" port
// to let the kernel pick one; Addr reports the bound address. Peer
// addresses are supplied separately with SetPeers, so nodes can be brought
// up before the full address list is known.
func NewTCPTransport(listen string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("node: listen %s: %w", listen, err)
	}
	return &TCPTransport{ln: ln}, nil
}

// SetPeers installs the per-node dial addresses (addrs[j] is node j's
// listen address; the self entry is unused). It must be called before Dial.
func (t *TCPTransport) SetPeers(addrs []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs = append([]string(nil), addrs...)
}

// Addr returns the locally bound listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Dial connects to the given node, retrying with seeded-jitter exponential
// backoff until the deadline.
func (t *TCPTransport) Dial(node int, deadline time.Time) (net.Conn, error) {
	t.mu.Lock()
	addrs := t.addrs
	bo := t.Backoff
	if bo == nil {
		// Derive the jitter seed from the bound port: stable per transport,
		// distinct per node on a shared host.
		var seed int64
		if t.ln != nil {
			if ta, ok := t.ln.Addr().(*net.TCPAddr); ok {
				seed = int64(ta.Port)
			}
		}
		bo = tssync.NewBackoff(dialBackoffMin, dialBackoffMax, seed)
		t.Backoff = bo
	}
	t.mu.Unlock()
	if node < 0 || node >= len(addrs) {
		return nil, fmt.Errorf("node: dial target %d out of range for %d addresses", node, len(addrs))
	}
	for attempt := 0; ; attempt++ {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("node: dial node %d (%s): deadline exceeded", node, addrs[node])
		}
		c, err := net.DialTimeout("tcp", addrs[node], remaining)
		if err == nil {
			return c, nil
		}
		if dialFatal(err) {
			// Retrying cannot help a malformed address or an exhausted fd
			// table; surface the cause now instead of burning the deadline.
			return nil, fmt.Errorf("node: dial node %d (%s): %w", node, addrs[node], err)
		}
		t.Retries.Add(1)
		sleep := bo.Delay(attempt)
		if sleep > remaining {
			sleep = remaining
		}
		time.Sleep(sleep)
	}
}

// dialFatal distinguishes dial errors no retry can fix — a malformed
// address, a hostname that does not resolve, an exhausted fd table, a
// permission or address-family problem — from the transient "peer not up
// yet" class (connection refused/reset, unreachable, timeout). Unknown
// errors count as transient: peers start in arbitrary order, and the old
// retry-everything behavior is the safe default for errors this list has
// never seen.
func dialFatal(err error) bool {
	var ae *net.AddrError
	if errors.As(err, &ae) {
		return true
	}
	var dns *net.DNSError
	if errors.As(err, &dns) {
		return dns.IsNotFound
	}
	var errno syscall.Errno
	if errors.As(err, &errno) {
		switch errno {
		case syscall.EMFILE, syscall.ENFILE, syscall.EACCES, syscall.EPERM, syscall.EAFNOSUPPORT, syscall.EPROTONOSUPPORT:
			return true
		}
	}
	return false
}

// Accept returns the next inbound TCP connection.
func (t *TCPTransport) Accept() (net.Conn, error) { return t.ln.Accept() }

// Close stops the listener.
func (t *TCPTransport) Close() error { return t.ln.Close() }

// Loop is an in-memory fabric connecting a fixed set of nodes with
// synchronous net.Pipe streams — the deterministic, port-free transport the
// tests and the check property run the full wire protocol over.
type Loop struct {
	accept []chan net.Conn
	done   []chan struct{}
	once   []sync.Once
}

// NewLoop returns a fabric for the given number of nodes.
func NewLoop(nodes int) *Loop {
	l := &Loop{
		accept: make([]chan net.Conn, nodes),
		done:   make([]chan struct{}, nodes),
		once:   make([]sync.Once, nodes),
	}
	for i := range l.accept {
		l.accept[i] = make(chan net.Conn)
		l.done[i] = make(chan struct{})
	}
	return l
}

// Transport returns the node-local view of the fabric for one node.
func (l *Loop) Transport(node int) Transport { return &loopTransport{l: l, self: node} }

type loopTransport struct {
	l    *Loop
	self int
}

func (t *loopTransport) Dial(node int, deadline time.Time) (net.Conn, error) {
	if node < 0 || node >= len(t.l.accept) {
		return nil, fmt.Errorf("node: dial target %d out of range for %d loop nodes", node, len(t.l.accept))
	}
	near, far := net.Pipe()
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case t.l.accept[node] <- far:
		return near, nil
	case <-t.l.done[node]:
		_ = near.Close()
		_ = far.Close()
		return nil, fmt.Errorf("node: dial loop node %d: peer closed", node)
	case <-timer.C:
		_ = near.Close()
		_ = far.Close()
		return nil, fmt.Errorf("node: dial loop node %d: deadline exceeded", node)
	}
}

func (t *loopTransport) Accept() (net.Conn, error) {
	select {
	case c := <-t.l.accept[t.self]:
		return c, nil
	case <-t.l.done[t.self]:
		return nil, fmt.Errorf("node: loop transport %d closed", t.self)
	}
}

func (t *loopTransport) Close() error {
	t.l.once[t.self].Do(func() { close(t.l.done[t.self]) })
	return nil
}
