// Sharded streaming collector tree.
//
// The legacy collect path (report.go) funnels every process's log into one
// collector that reconstructs the whole trace in memory — O(run) state,
// which caps run size long before the hot path does. The tree splits the
// work across leaf collectors, each owning a partition (shard) of the
// process space:
//
//	records ──route by proc % leaves──▶ leaf: verify incrementally (chain
//	        monotonicity, star-root density — internal/check.ShardVerifier),
//	        spill verified segments to an fsynced journal file, keep only
//	        O(shard) state
//	leaf ──SUMMARY frame──▶ root: judge cross-shard consistency from the
//	        per-group multiset fingerprints, emit the VERDICT
//
// The root↔leaf control protocol runs over real wire frames (SHARD down,
// SUMMARY up, VERDICT down), so the tree's layers speak the same codec the
// data plane does and a leaf can later live on another machine unchanged.
package node

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"syncstamp/internal/check"
	"syncstamp/internal/csp"
	"syncstamp/internal/obs"
	"syncstamp/internal/wire"
)

// TreeConfig shapes a collector tree.
type TreeConfig struct {
	// Leaves is the number of leaf collectors (default 1). Processes are
	// assigned by the modulo rule proc % Leaves — the same rule the SHARD
	// frame announces.
	Leaves int
	// SpillDir, when non-empty, is the directory verified segments are
	// spilled to, one fsynced journal file per shard (shard-<leaf>.spill).
	// Empty disables spill: records stream through verification and are
	// dropped.
	SpillDir string
	// SegmentRecords is the spill segment size in records (default 4096).
	// One fsync covers each segment, and a leaf's resident buffer never
	// exceeds it.
	SegmentRecords int
	// KeepLogs retains every record in memory, so Logs() can feed
	// csp.Reconstruct afterwards — the control-run mode that cross-checks
	// the streaming verdict against the whole-trace replay oracle. Defeats
	// the bounded-memory point at scale; for small runs only.
	KeepLogs bool

	// crashLeaf/crashAfter are test hooks: leaf crashLeaf dies without a
	// summary after crashAfter records (crashAfter 0 disables).
	crashLeaf  int
	crashAfter int64
}

// TreeVerdict is the root's judgment of a collected run plus the tree's
// resource accounting.
type TreeVerdict struct {
	// OK means every shard reported, verified cleanly, and the cross-shard
	// fingerprints agree.
	OK bool
	// Shards counts the leaf summaries that reached the root.
	Shards int
	// Messages and Records are run totals counted by the shards.
	Messages int64
	Records  int64
	// SegmentsSpilled and SpillBytes account the spill traffic across
	// leaves.
	SegmentsSpilled int64
	SpillBytes      int64
	// MaxResident is the largest record buffer any leaf held at once —
	// bounded by SegmentRecords when spilling, which is the O(shard) claim
	// in a measurable form.
	MaxResident int64
	// Problems lists everything the root found wrong, in group order.
	Problems []string
}

// String renders the verdict one line per fact, problems last.
func (v *TreeVerdict) String() string {
	s := fmt.Sprintf("verdict ok=%v shards=%d messages=%d records=%d segments=%d spill_bytes=%d",
		v.OK, v.Shards, v.Messages, v.Records, v.SegmentsSpilled, v.SpillBytes)
	for _, p := range v.Problems {
		s += "\n  problem: " + p
	}
	return s
}

// procRec is one routed record.
type procRec struct {
	proc int
	rec  csp.Record
}

// CollectorTree is a 2-level streaming collector: leaf goroutines verify
// and spill their shards concurrently, a root combines their summaries.
// Ingest may be called from many goroutines; Finish must be called exactly
// once, after every Ingest has returned.
type CollectorTree struct {
	topo   check.Topology
	cfg    TreeConfig
	chans  []chan procRec
	leaves []*leafCollector
	wg     sync.WaitGroup

	// rollup accumulates the leaves' shard-registry snapshots (METRICS
	// frames preceding each SUMMARY); Finish is its only writer.
	rollup *obs.Registry
}

// leafCollector owns one shard: a verifier, a segment buffer, and a spill
// journal. Its run loop is the only goroutine touching the fields below the
// channel.
type leafCollector struct {
	id   int
	ch   chan procRec
	dec  *wire.Decoder // control frames from the root (SHARD, VERDICT)
	enc  *wire.Encoder // control frames to the root (SUMMARY)
	down *io.PipeReader
	up   *io.PipeWriter

	// The root's ends of the same pipes.
	rootEnc  *wire.Encoder
	rootDec  *wire.Decoder
	rootDown *io.PipeWriter

	ver      *check.ShardVerifier
	jr       *Journal
	seg      []JournalRecord
	segCap   int
	keepLogs bool
	logs     map[int][]csp.Record

	// The leaf's own shard registry, shipped to the root on a METRICS
	// frame ahead of the SUMMARY; the resolved counters avoid a map
	// lookup per record.
	reg         *obs.Registry
	recRecords  *obs.Counter
	recSegments *obs.Counter
	recSpill    *obs.Counter

	records     int64
	segments    int64
	spillBytes  int64
	maxResident int64
	ioErr       error

	crashAfter int64
	crashed    bool
}

// NewCollectorTree builds the tree and starts its leaf goroutines. Each
// leaf's first act is decoding the root's SHARD frame — its assignment —
// and its last is decoding the root's VERDICT.
func NewCollectorTree(topo check.Topology, cfg TreeConfig) (*CollectorTree, error) {
	if cfg.Leaves <= 0 {
		cfg.Leaves = 1
	}
	if cfg.SegmentRecords <= 0 {
		cfg.SegmentRecords = 4096
	}
	if cfg.SpillDir != "" {
		if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("node: collector spill dir: %w", err)
		}
	}
	t := &CollectorTree{topo: topo, cfg: cfg, rollup: obs.NewRegistry()}
	d := topo.D()
	for i := 0; i < cfg.Leaves; i++ {
		l := &leafCollector{
			id:       i,
			ch:       make(chan procRec, 1024),
			ver:      check.NewShardVerifier(topo, i),
			segCap:   cfg.SegmentRecords,
			keepLogs: cfg.KeepLogs,
			reg:      obs.NewRegistry(),
		}
		l.recRecords = l.reg.Counter(obs.MetricShardRecords)
		l.recSegments = l.reg.Counter(obs.MetricShardSegments)
		l.recSpill = l.reg.Counter(obs.MetricShardSpillBytes)
		if cfg.KeepLogs {
			l.logs = make(map[int][]csp.Record)
		}
		if cfg.crashAfter > 0 && cfg.crashLeaf == i {
			l.crashAfter = cfg.crashAfter
		}
		if cfg.SpillDir != "" {
			jr, prior, err := OpenJournal(SpillPath(cfg.SpillDir, i))
			if err != nil {
				t.abort()
				return nil, err
			}
			if len(prior) > 0 {
				_ = jr.Close()
				t.abort()
				return nil, fmt.Errorf("node: spill file %s already holds %d records", SpillPath(cfg.SpillDir, i), len(prior))
			}
			l.jr = jr
		}
		// The control plane: root→leaf and leaf→root pipes speaking wire
		// frames.
		downR, downW := io.Pipe()
		upR, upW := io.Pipe()
		l.down, l.up = downR, upW
		l.dec = wire.NewDecoder(downR, d)
		l.enc = wire.NewEncoder(upW, d)
		rootEnc := wire.NewEncoder(downW, d)
		rootDec := wire.NewDecoder(upR, d)
		t.chans = append(t.chans, l.ch)
		t.leaves = append(t.leaves, l)
		t.wg.Add(1)
		go func(l *leafCollector) {
			defer t.wg.Done()
			l.run()
		}(l)
		if err := rootEnc.Encode(&wire.Frame{Kind: wire.KindShard, Leaf: i, Leaves: cfg.Leaves}); err != nil {
			t.abort()
			return nil, fmt.Errorf("node: shard assignment to leaf %d: %w", i, err)
		}
		l.rootEnc, l.rootDec, l.rootDown = rootEnc, rootDec, downW
	}
	return t, nil
}

// abort tears down a half-built tree.
func (t *CollectorTree) abort() {
	for _, ch := range t.chans {
		close(ch)
	}
	for _, l := range t.leaves {
		_ = l.down.Close()
		if l.jr != nil {
			_ = l.jr.Close()
		}
	}
	t.wg.Wait()
}

// SpillPath is shard leaf's spill file under dir.
func SpillPath(dir string, leaf int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.spill", leaf))
}

// Ingest routes one record to its shard's leaf, in the caller's program
// order for the process. Safe for concurrent use; callers must preserve
// per-process ordering themselves (hold the process's lock across the
// call).
func (t *CollectorTree) Ingest(proc int, rec csp.Record) error {
	t.chans[proc%len(t.chans)] <- procRec{proc: proc, rec: rec}
	return nil
}

// Finish closes the stream, rolls the shard summaries up to the root, and
// returns the verdict. No Ingest may be in flight or follow.
func (t *CollectorTree) Finish() (*TreeVerdict, error) {
	for _, ch := range t.chans {
		close(ch)
	}
	sums := make([]*wire.ShardSummary, len(t.leaves))
	for i, l := range t.leaves {
		// A healthy leaf sends its shard-registry METRICS, then its
		// SUMMARY; a crashed leaf sends neither (its pipe just closes) and
		// the root judges it missing.
		for {
			f, err := l.rootDec.Decode()
			if err != nil {
				break
			}
			if f.Kind == wire.KindMetrics && f.Metrics != nil {
				_ = t.rollup.Merge(SnapshotFromMetrics(f.Metrics))
				continue
			}
			if f.Kind == wire.KindSummary && f.Summary != nil && f.Summary.Leaf == i {
				sums[i] = f.Summary
			}
			break
		}
	}
	verdict := check.CombineSummaries(t.topo, len(t.leaves), sums)
	tv := &TreeVerdict{
		OK:       verdict.OK,
		Shards:   verdict.Shards,
		Messages: int64(verdict.Messages),
		Records:  int64(verdict.Records),
		Problems: verdict.Problems,
	}
	for i, l := range t.leaves {
		if err := l.rootEnc.Encode(&wire.Frame{Kind: wire.KindVerdict, Verdict: verdict}); err != nil {
			// A crashed leaf's pipe is closed; the verdict broadcast is
			// best-effort there.
			_ = i
		}
		_ = l.rootDown.Close()
	}
	t.wg.Wait()
	for _, l := range t.leaves {
		tv.SegmentsSpilled += l.segments
		tv.SpillBytes += l.spillBytes
		if l.maxResident > tv.MaxResident {
			tv.MaxResident = l.maxResident
		}
		if l.jr != nil {
			_ = l.jr.Close()
		}
	}
	return tv, nil
}

// Rollup snapshots the merged shard registries the leaves shipped up.
// Valid after Finish; counters are exactly the sums over the healthy
// leaves' own registries (Registry.Merge adds counters).
func (t *CollectorTree) Rollup() obs.Snapshot { return t.rollup.Snapshot() }

// Logs merges the leaves' retained logs (KeepLogs mode) into the
// per-process slice csp.Reconstruct takes.
func (t *CollectorTree) Logs() [][]csp.Record {
	logs := make([][]csp.Record, t.topo.N())
	for _, l := range t.leaves {
		for p := 0; p < len(logs); p++ {
			if log, ok := l.logs[p]; ok {
				logs[p] = log
			}
		}
	}
	return logs
}

// run is a leaf's life: assignment, stream, summary, verdict.
func (l *leafCollector) run() {
	defer func() { _ = l.up.Close() }()
	defer func() { _ = l.down.Close() }()
	if f, err := l.dec.Decode(); err != nil || f.Kind != wire.KindShard || f.Leaf != l.id {
		l.ioErr = fmt.Errorf("node: leaf %d: bad shard assignment (%v)", l.id, err)
	}
	for pr := range l.ch {
		if l.crashed {
			continue // drain so Ingest never blocks on a dead shard
		}
		l.ingest(pr)
	}
	if l.crashed {
		return // simulated mid-stream death: no summary ever reaches the root
	}
	l.flushSegment()
	// The shard registry rides up ahead of the summary, so the root can
	// fold every healthy leaf's counters into the cluster rollup.
	mf := &wire.Frame{Kind: wire.KindMetrics, Metrics: MetricsFromSnapshot(l.id, l.reg.Snapshot())}
	if err := l.enc.Encode(mf); err != nil {
		return
	}
	sum := l.ver.Summary()
	sum.Segments = uint64(l.segments)
	sum.Spilled = uint64(l.spillBytes)
	if sum.Err == "" && l.ioErr != nil {
		sum.Err = l.ioErr.Error()
	}
	if err := l.enc.Encode(&wire.Frame{Kind: wire.KindSummary, Summary: sum}); err != nil {
		return
	}
	// Await the verdict so the shutdown is a clean two-way close.
	_, _ = l.dec.Decode()
}

// ingest verifies, retains, and spills one record.
func (l *leafCollector) ingest(pr procRec) {
	l.records++
	if l.crashAfter > 0 && l.records >= l.crashAfter {
		l.crashed = true
		return
	}
	l.recRecords.Add(1)
	_ = l.ver.Ingest(pr.proc, pr.rec) // the verifier holds its first error for the summary
	if l.keepLogs {
		l.logs[pr.proc] = append(l.logs[pr.proc], pr.rec)
	}
	if l.jr == nil {
		return
	}
	jr := JournalRecord{Proc: pr.proc, Peer: pr.rec.Peer, Stamp: pr.rec.Stamp}
	switch pr.rec.Kind {
	case csp.RecordSend:
		jr.Kind = journalSend
	case csp.RecordRecv:
		jr.Kind = journalRecv
	case csp.RecordInternal:
		jr.Kind = journalInternal
		jr.Peer = 0
		jr.Stamp = nil
		jr.Note = fmt.Sprint(pr.rec.Note)
	}
	l.seg = append(l.seg, jr)
	if n := int64(len(l.seg)); n > l.maxResident {
		l.maxResident = n
	}
	if len(l.seg) >= l.segCap {
		l.flushSegment()
	}
}

// flushSegment spills the buffered segment: one Write, one fsync.
func (l *leafCollector) flushSegment() {
	if l.jr == nil || len(l.seg) == 0 || l.ioErr != nil {
		return
	}
	n, err := l.jr.AppendBatch(l.seg)
	if err != nil {
		l.ioErr = err
		return
	}
	l.segments++
	l.spillBytes += int64(n)
	l.recSegments.Add(1)
	l.recSpill.Add(int64(n))
	l.seg = l.seg[:0]
}

// ReadSpill restores the per-process logs a collector tree spilled under
// dir: each shard file is replayed with the journal's torn-line recovery,
// so a tree killed mid-segment restores the complete prefix of every
// shard's verified stream.
func ReadSpill(dir string, leaves, n int) ([][]csp.Record, error) {
	logs := make([][]csp.Record, n)
	for leaf := 0; leaf < leaves; leaf++ {
		jr, recs, err := OpenJournal(SpillPath(dir, leaf))
		if err != nil {
			return nil, err
		}
		_ = jr.Close()
		for _, rec := range recs {
			if rec.Proc < 0 || rec.Proc >= n {
				return nil, fmt.Errorf("node: spill shard %d names process %d, out of range", leaf, rec.Proc)
			}
			var cr csp.Record
			switch rec.Kind {
			case journalSend:
				cr = csp.Record{Kind: csp.RecordSend, Peer: rec.Peer, Stamp: rec.Stamp}
			case journalRecv:
				cr = csp.Record{Kind: csp.RecordRecv, Peer: rec.Peer, Stamp: rec.Stamp}
			case journalInternal:
				cr = csp.Record{Kind: csp.RecordInternal, Note: rec.Note}
			case journalRestart:
				continue
			default:
				return nil, fmt.Errorf("node: spill shard %d holds unknown record kind %q", leaf, rec.Kind)
			}
			logs[rec.Proc] = append(logs[rec.Proc], cr)
		}
	}
	return logs, nil
}

// CollectTree receives the peer nodes' reports exactly like Collect, but
// streams every record through a collector tree instead of buffering the
// run: shards verify incrementally, spill to disk, and the root's verdict
// is the outcome — O(shard) collector memory instead of O(run). The
// counters land in info (and /metrics when the node carries a registry).
// A failed verdict is a result, not an error; errors are transport or
// timeout failures.
func (n *Node) CollectTree(info *RunInfo, timeout time.Duration, cfg TreeConfig) (*TreeVerdict, error) {
	tree, err := NewCollectorTree(check.NewDecompTopology(n.cfg.Dec), cfg)
	if err != nil {
		return nil, err
	}
	serr := n.collectStream(info, timeout, tree.Ingest)
	verdict, ferr := tree.Finish()
	if serr != nil {
		return nil, serr
	}
	if ferr != nil {
		return nil, ferr
	}
	info.SegmentsSpilled = verdict.SegmentsSpilled
	info.SpillBytes = verdict.SpillBytes
	info.ShardsVerified = int64(verdict.Shards)
	if r := n.cfg.Obs.Registry(); r != nil {
		r.Gauge(obs.MetricSegmentsSpilled).Set(verdict.SegmentsSpilled)
		r.Gauge(obs.MetricSpillBytes).Set(verdict.SpillBytes)
		r.Gauge(obs.MetricShardsVerified).Set(int64(verdict.Shards))
	}
	// Fold the tree's leaf registries into the same rollup the peer
	// nodes' METRICS frames landed in, then publish the merged view.
	if err := n.mergeMetrics(tree.Rollup()); err != nil {
		return nil, err
	}
	if err := n.finishRollup(info); err != nil {
		return nil, err
	}
	return verdict, nil
}
