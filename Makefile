# syncstamp — reproduction of "Timestamping Messages in Synchronous
# Computations" (Garg & Skawratananond, ICDCS 2002).

GO ?= go

.PHONY: all build vet lint lint-baseline test race net-test obs-test chaos-test async-test load-test bench microbench fuzz repro examples clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

# Static analysis gate: the repo-specific analyzers (cmd/tslint enforces the
# clock & determinism invariants of DESIGN.md "Enforced invariants") plus
# go vet and gofmt, so the local gate matches the CI lint job. The analyzer
# self-tests then prove every analyzer bites: the golden tests pin the exact
# diagnostics each seeded-violation package must produce and require each
# clean twin to stay silent, and the two spot checks below keep the
# end-to-end driver honest (a concurrency seed must fail, across module and
# per-package analyzers alike).
lint: vet
	$(GO) run ./cmd/tslint -baseline lint.baseline ./...
	$(GO) test -run 'TestAnalyzersGolden|TestNolintPolicy' ./internal/lint
	! $(GO) run ./cmd/tslint internal/lint/testdata/src/vectoralias/bad >/dev/null 2>&1
	! $(GO) run ./cmd/tslint internal/lint/testdata/src/spinbound/bad >/dev/null 2>&1

# Refresh the accepted-findings baseline (see lint.baseline header). The
# committed file is empty: the module is clean, and CI fails on anything new.
lint-baseline:
	$(GO) run ./cmd/tslint -write-baseline lint.baseline ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Networking subsystem gate: the node runtime under the race detector plus
# the tsnode integration test (real OS processes over localhost TCP).
net-test:
	$(GO) test -race ./internal/wire ./internal/node
	$(GO) test -race -run 'TestRunInProcessCluster|TestE2E' -v ./cmd/tsnode

# Observability gate: the obs package (including the zero-alloc-when-
# disabled and byte-stable-export acceptance tests, merge algebra, flight
# wraparound, and critpath determinism) under the race detector, the
# runtime hook + rollup + flight-dump tests in csp/node, and the
# trace-report/critical-path oracles plus the full e2e (obs endpoints +
# JSONL round trip through tsanalyze, byte-identical critical-path
# profiles across two runs).
obs-test:
	$(GO) test -race ./internal/obs
	$(GO) test -race -run 'Obs|Dropped|TraceReport|Rollup|Flight|CriticalPath' ./internal/csp ./internal/node ./cmd/tsanalyze
	$(GO) test -race -run 'TestE2E' -v ./cmd/tsnode

# Fault-injection gate: the deterministic injector and the loss-tolerant
# protocol under the race detector (chaos matrix, resets, exclusion,
# journal restore), plus the chaos e2e runs — fault-plan trace determinism
# and the kill -9 crash-recovery soak over real OS processes, which also
# requires every node's flight dump to exist and the merged dumps to
# replay-verify against the sequential oracle.
chaos-test:
	$(GO) test -race ./internal/fault
	$(GO) test -race -run 'TestJournal|TestRestore|TestLateAck|TestDialClassification' ./internal/node
	$(GO) test -race -run 'TestE2EFaultPlanDeterministicTraces|TestE2EKillNineRecoverySoak' -v ./cmd/tsnode

# Async-substrate gate: the α-synchronizer under the race detector — the
# internal/sync estimator/backoff/health units, the full async chaos matrix
# (every topology family × 8 seeds × loss to 20% × the three jitter
# profiles, stamps byte-equal to the sequential oracle), suspicion-driven
# exclusion with its property-level check, the async cluster rollup, and
# the async kill -9 e2e over real OS processes.
async-test:
	$(GO) test -race ./internal/sync
	SYNCSTAMP_ASYNC_MATRIX=full $(GO) test -race -run 'TestAsync|TestPropAsync' -timeout 30m ./internal/fault
	$(GO) test -race -run 'TestAsyncClusterRollup' ./internal/node
	$(GO) test -race -run 'TestE2EAsyncKillNineRecovers' -v ./cmd/tsnode

# Load/collector gate: the open-loop driver and the sharded collector tree
# under the race detector (incremental oracle, spill recovery, leaf-crash
# and straggler paths), then the 100k-client scale acceptance run and a
# spilling tsload control run end to end.
load-test:
	$(GO) test -race ./internal/load ./internal/check ./cmd/tsload
	$(GO) test -race -run 'TestCollector|TestSpill|TestCollectTree|TestCollectTimeout' ./internal/node
	$(GO) test -run TestLoadHundredThousandClients -v ./internal/load
	dir=$$(mktemp -d) && $(GO) run ./cmd/tsload -servers 8 -clients 5000 -msgs 2 \
		-zipf 0.9 -leaves 4 -spill-dir $$dir -segment 512 -control && rm -rf $$dir

# Throughput gate: cmd/tsbench runs every scenario (loop, tcp, journal,
# load, async) with a fixed seed, writes BENCH_<name>.json, and fails if any
# report is malformed or either arm recorded zero throughput. Committed
# BENCH files at the repo root are refreshed by running this and checking in
# the result.
bench:
	$(GO) run ./cmd/tsbench -seed 42 -out .

microbench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz pass over every fuzz target (seeds always run under `make test`).
fuzz:
	$(GO) test -fuzz=FuzzReadText -fuzztime=10s ./internal/trace
	$(GO) test -fuzz=FuzzReadText -fuzztime=10s ./internal/graph
	$(GO) test -fuzz=FuzzDecode -fuzztime=10s ./internal/vector
	$(GO) test -fuzz=FuzzCompare -fuzztime=10s ./internal/vector
	$(GO) test -fuzz=FuzzStampTrace -fuzztime=10s ./internal/core
	$(GO) test -fuzz=FuzzVectorDelta -fuzztime=10s ./internal/vector
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=10s ./internal/wire
	$(GO) test -fuzz=FuzzFaultPlan -fuzztime=10s ./internal/fault
	$(GO) test -fuzz=FuzzNolint -fuzztime=10s ./internal/lint

# Regenerate every paper figure/claim table into paperbench_output.txt.
repro:
	$(GO) run ./cmd/paperbench | tee paperbench_output.txt
	@grep -q FAIL paperbench_output.txt && echo "REPRODUCTION DRIFT" && exit 1 || echo "all experiments OK"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/clientserver
	$(GO) run ./examples/tree20
	$(GO) run ./examples/debugger
	$(GO) run ./examples/figure6
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/recovery

clean:
	$(GO) clean ./...
