package syncstamp_test

import (
	"math/rand"
	"testing"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/offline"
	"syncstamp/internal/trace"
	"syncstamp/internal/vclock"
	"syncstamp/internal/vector"
)

// TestScaleClientServer validates the headline claim at production-ish
// scale: 4 servers, 400 clients, 50,000 messages. The full pairwise oracle
// is quadratic, so correctness is checked on sampled pairs against the
// Fowler–Zwaenepoel recursive oracle, and the size claim (d = 4 vs N = 404)
// is checked exactly.
func TestScaleClientServer(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	const servers, clients, msgs = 4, 400, 50000
	g := graph.ClientServer(servers, clients, false)
	cover := make([]int, servers)
	for s := range cover {
		cover[s] = s
	}
	dec, err := decomp.FromVertexCover(g, cover)
	if err != nil {
		t.Fatal(err)
	}
	if dec.D() != servers {
		t.Fatalf("d = %d, want %d", dec.D(), servers)
	}

	rng := rand.New(rand.NewSource(2002))
	tr := trace.Generate(g, trace.GenOptions{Messages: msgs, Hotspot: 0.3}, rng)
	stamps, err := core.StampTrace(tr, dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(stamps) != msgs {
		t.Fatalf("stamped %d of %d", len(stamps), msgs)
	}
	for _, s := range stamps {
		if len(s) != servers {
			t.Fatalf("stamp with %d components", len(s))
		}
	}

	dd := vclock.NewDirectDep(tr)
	const samples = 4000
	for k := 0; k < samples; k++ {
		i, j := rng.Intn(msgs), rng.Intn(msgs)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		want, _ := dd.Precedes(i, j)
		if got := vector.Less(stamps[i], stamps[j]); got != want {
			t.Fatalf("pair (%d,%d): got %v want %v", i, j, got, want)
		}
		// And the reverse direction must never hold for i < j in trace
		// order (stamps respect the generation order's potential causality).
		if vector.Less(stamps[j], stamps[i]) {
			t.Fatalf("pair (%d,%d): later message ordered before earlier", i, j)
		}
	}

	// Overhead claim at scale: mean piggyback stays a few bytes.
	total := 0
	for _, s := range stamps {
		total += s.EncodedSize()
	}
	mean := float64(total) / msgs
	if mean > 3*float64(servers) {
		t.Fatalf("mean piggyback %v bytes too large for d=%d", mean, servers)
	}
	t.Logf("N=%d msgs=%d d=%d mean piggyback %.1f bytes (FM would be ≥ %d)",
		g.N(), msgs, dec.D(), mean, g.N())
}

// TestScaleTreeOnline stresses the online algorithm on a 60-process tree
// with thousands of messages, sampled against the recursive oracle.
func TestScaleTreeOnline(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomTree(60, rng)
	tr := trace.Generate(g, trace.GenOptions{Messages: 3000}, rng)
	stamps, err := core.StampTrace(tr, decomp.Approximate(g))
	if err != nil {
		t.Fatal(err)
	}
	dd := vclock.NewDirectDep(tr)
	for k := 0; k < 2000; k++ {
		i, j := rng.Intn(len(stamps)), rng.Intn(len(stamps))
		if i >= j {
			continue
		}
		want, _ := dd.Precedes(i, j)
		if vector.Less(stamps[i], stamps[j]) != want {
			t.Fatalf("pair (%d,%d) wrong", i, j)
		}
	}
}

// TestScaleOfflineWidth runs the full offline pipeline — closure, Dilworth
// matching, realizer, position vectors — on an 800-message computation.
func TestScaleOfflineWidth(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(8))
	g := graph.Complete(16)
	tr := trace.Generate(g, trace.GenOptions{Messages: 800}, rng)
	res, err := offline.Stamp(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Width > tr.N/2 {
		t.Fatalf("width %d > ⌊N/2⌋", res.Width)
	}
	dd := vclock.NewDirectDep(tr)
	for k := 0; k < 2000; k++ {
		i, j := rng.Intn(len(res.Stamps)), rng.Intn(len(res.Stamps))
		if i >= j {
			continue
		}
		want, _ := dd.Precedes(i, j)
		if vector.Less(res.Stamps[i], res.Stamps[j]) != want {
			t.Fatalf("pair (%d,%d) wrong", i, j)
		}
	}
	t.Logf("offline: %d messages, width %d, realizer of %d extensions", len(res.Stamps), res.Width, len(res.Realizer))
}
