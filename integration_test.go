package syncstamp_test

import (
	"fmt"
	"testing"

	"syncstamp/internal/chainclock"
	"syncstamp/internal/cluster"
	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/offline"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
	"syncstamp/internal/vclock"
	"syncstamp/internal/vector"
)

// mechanism is anything that produces message stamps claiming to
// characterize ↦ exactly (the order-preserving-only baselines are checked
// separately with a weaker contract).
type mechanism struct {
	name  string
	exact bool
	stamp func(tr *trace.Trace, topo *graph.Graph) ([]vector.V, error)
}

func allMechanisms() []mechanism {
	return []mechanism{
		{"online/fig7", true, func(tr *trace.Trace, topo *graph.Graph) ([]vector.V, error) {
			return core.StampTrace(tr, decomp.Approximate(topo))
		}},
		{"online/best", true, func(tr *trace.Trace, topo *graph.Graph) ([]vector.V, error) {
			return core.StampTrace(tr, decomp.Best(topo))
		}},
		{"online/trivial-stars", true, func(tr *trace.Trace, topo *graph.Graph) ([]vector.V, error) {
			return core.StampTrace(tr, decomp.TrivialStars(topo))
		}},
		{"offline", true, func(tr *trace.Trace, _ *graph.Graph) ([]vector.V, error) {
			res, err := offline.Stamp(tr)
			if err != nil {
				return nil, err
			}
			return res.Stamps, nil
		}},
		{"fidge-mattern", true, func(tr *trace.Trace, _ *graph.Graph) ([]vector.V, error) {
			return vclock.FM{}.StampTrace(tr), nil
		}},
		{"singhal-kshemkalyani", true, func(tr *trace.Trace, _ *graph.Graph) ([]vector.V, error) {
			return vclock.SK{}.StampTrace(tr), nil
		}},
		{"chain-clocks", true, func(tr *trace.Trace, _ *graph.Graph) ([]vector.V, error) {
			return chainclock.StampTrace(tr).Stamps, nil
		}},
		{"lamport", false, func(tr *trace.Trace, _ *graph.Graph) ([]vector.V, error) {
			return vclock.Lamport{}.StampTrace(tr), nil
		}},
		{"plausible-R3", false, func(tr *trace.Trace, _ *graph.Graph) ([]vector.V, error) {
			return vclock.Plausible{R: 3}.StampTrace(tr), nil
		}},
	}
}

type workloadCase struct {
	name string
	topo *graph.Graph
	tr   *trace.Trace
}

func allWorkloads() []workloadCase {
	return []workloadCase{
		{"rpc 2x4x3", graph.ClientServer(2, 4, false), trace.RPCWorkload(2, 4, 3)},
		{"ring 6x3", graph.Cycle(6), trace.RingToken(6, 3)},
		{"tree gather-scatter", graph.BalancedTree(2, 2), trace.TreeGatherScatter(2, 2, 2)},
		{"pipeline 4x5", graph.Path(4), trace.Pipeline(4, 5)},
		{"figure1", trace.Figure1().Topology(), trace.Figure1()},
		{"figure6", graph.Complete(5), trace.Figure6()},
	}
}

// TestIntegrationMatrix cross-checks every mechanism against the oracle on
// every structured workload: exact mechanisms must match ↦ on all pairs,
// order-preserving ones must never miss a true order.
func TestIntegrationMatrix(t *testing.T) {
	for _, wl := range allWorkloads() {
		p := order.MessagePoset(wl.tr)
		for _, m := range allMechanisms() {
			t.Run(fmt.Sprintf("%s/%s", wl.name, m.name), func(t *testing.T) {
				stamps, err := m.stamp(wl.tr, wl.topo)
				if err != nil {
					t.Fatal(err)
				}
				if len(stamps) != wl.tr.NumMessages() {
					t.Fatalf("stamped %d of %d messages", len(stamps), wl.tr.NumMessages())
				}
				for i := range stamps {
					for j := range stamps {
						if i == j {
							continue
						}
						got := vector.Less(stamps[i], stamps[j])
						want := p.Less(i, j)
						if m.exact && got != want {
							t.Fatalf("pair (%d,%d): got %v want %v (%v vs %v)",
								i, j, got, want, stamps[i], stamps[j])
						}
						if !m.exact && want && !got {
							t.Fatalf("pair (%d,%d): true order missed", i, j)
						}
					}
				}
			})
		}
		// The cluster scheme has its own query API.
		t.Run(fmt.Sprintf("%s/cluster", wl.name), func(t *testing.T) {
			part, err := cluster.Contiguous(wl.tr.N, (wl.tr.N+1)/2)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cluster.Stamp(wl.tr, part)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < p.N(); i++ {
				for j := 0; j < p.N(); j++ {
					if i == j {
						continue
					}
					got, _ := res.Precedes(i, j)
					if got != p.Less(i, j) {
						t.Fatalf("pair (%d,%d): cluster scheme wrong", i, j)
					}
				}
			}
		})
	}
}
