// Package syncstamp timestamps messages and events in synchronous
// computations, reproducing Garg & Skawratananond, "Timestamping Messages in
// Synchronous Computations" (ICDCS 2002).
//
// The headline result: in a system whose processes communicate only through
// synchronous (blocking, CSP/rendezvous-style) messages, the order
// relationship between messages can be captured with vectors whose size is
// the edge-decomposition number of the communication topology — at most
// min(β(G), N−2) where β(G) is a vertex cover — instead of the N components
// Fidge–Mattern vector clocks require. For a client–server system with k
// servers, k components suffice no matter how many clients there are.
//
// # Quick start
//
//	topo := syncstamp.ClientServer(2, 100)     // 2 servers, 100 clients
//	dec := syncstamp.Decompose(topo)           // d == 2 edge groups
//	s := syncstamp.NewStamper(dec)
//	v1, _ := s.StampMessage(0, 5)              // server 0 <-> client 5
//	v2, _ := s.StampMessage(1, 6)
//	fmt.Println(syncstamp.Precedes(v1, v2))    // exact ↦ test, 2 ints each
//
// The package is a façade: the implementation lives in internal packages
// (decomp, core, offline, csp, vclock, ...) whose doc comments map each
// piece back to the paper.
package syncstamp

import (
	"io"
	"math/rand"
	"time"

	"syncstamp/internal/chainclock"
	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/monitor"
	"syncstamp/internal/offline"
	"syncstamp/internal/order"
	"syncstamp/internal/poset"
	"syncstamp/internal/sim"
	"syncstamp/internal/trace"
	"syncstamp/internal/vclock"
	"syncstamp/internal/vector"
	"syncstamp/internal/vis"
)

// Core types, re-exported so applications need only this package.
type (
	// Vector is a logical-clock vector compared with the paper's vector
	// order (Equation (2)).
	Vector = vector.V
	// Topology is the undirected communication graph G = (V, E).
	Topology = graph.Graph
	// Edge is an undirected channel between two processes.
	Edge = graph.Edge
	// Decomposition is an edge decomposition {E_1, ..., E_d} of a topology
	// into stars and triangles (Definition 2).
	Decomposition = decomp.Decomposition
	// Clock is the per-process online-algorithm state (Figure 5).
	Clock = core.Clock
	// Stamper runs the online algorithm over a computation sequentially.
	Stamper = core.Stamper
	// EventStamp is the (prev, succ, c) internal-event timestamp of
	// Section 5.
	EventStamp = core.EventStamp
	// StampedTrace bundles message and internal-event stamps.
	StampedTrace = core.StampedTrace
	// Trace is a recorded synchronous computation.
	Trace = trace.Trace
	// Op is one step of a computation (message or internal event).
	Op = trace.Op
	// Msg identifies one message of a computation.
	Msg = trace.Msg
	// OfflineResult is the Figure 9 offline algorithm's output.
	OfflineResult = offline.Result
	// Poset is a partial order used for ground-truth order queries.
	Poset = poset.Poset
	// Process is a CSP runtime process handle.
	Process = csp.Process
	// Message is a message delivered by the CSP runtime.
	Message = csp.Message
	// RunResult is the outcome of a CSP run.
	RunResult = csp.Result
	// System is the CSP runtime with dynamic membership (Start/Join/Wait).
	System = csp.System
)

// Topology constructors.

// NewTopology returns an empty topology on n processes; add channels with
// AddEdge.
func NewTopology(n int) *Topology { return graph.New(n) }

// Complete returns the fully connected topology on n processes.
func Complete(n int) *Topology { return graph.Complete(n) }

// Star returns the star topology on n processes rooted at process 0.
func Star(n int) *Topology { return graph.Star(n, 0) }

// ClientServer returns a topology with the given servers and clients where
// clients communicate only with servers (Section 3.3's motivating case).
func ClientServer(servers, clients int) *Topology {
	return graph.ClientServer(servers, clients, false)
}

// Tree returns the complete branching-ary tree of the given depth.
func Tree(branching, depth int) *Topology { return graph.BalancedTree(branching, depth) }

// Decompositions.

// Decompose returns a small edge decomposition of topo, taking the best of
// the Figure 7 approximation algorithm (ratio bound 2, optimal on trees)
// and the vertex-cover and trivial constructions of Theorem 5.
func Decompose(topo *Topology) *Decomposition { return decomp.Best(topo) }

// DecomposeFigure7 runs exactly the paper's Figure 7 algorithm.
func DecomposeFigure7(topo *Topology) *Decomposition { return decomp.Approximate(topo) }

// DecomposeServers decomposes a topology with one star per cover vertex —
// for client-server systems pass the server ids to get d = #servers.
func DecomposeServers(topo *Topology, cover []int) (*Decomposition, error) {
	return decomp.FromVertexCover(topo, cover)
}

// Online algorithm (Figure 5).

// NewClock returns process proc's clock under dec, for embedding in a
// messaging runtime.
func NewClock(proc int, dec *Decomposition) *Clock { return core.NewClock(proc, dec) }

// NewStamper returns a sequential stamper for replaying computations.
func NewStamper(dec *Decomposition) *Stamper { return core.NewStamper(dec) }

// StampTrace timestamps every message of tr under dec.
func StampTrace(tr *Trace, dec *Decomposition) ([]Vector, error) {
	return core.StampTrace(tr, dec)
}

// StampAll timestamps messages and internal events (Section 5).
func StampAll(tr *Trace, dec *Decomposition) (*StampedTrace, error) {
	return core.StampAll(tr, dec)
}

// Precedes reports m1 ↦ m2 from two message timestamps (Theorem 4).
func Precedes(v1, v2 Vector) bool { return core.Precedes(v1, v2) }

// Concurrent reports m1 ‖ m2 from two message timestamps.
func Concurrent(v1, v2 Vector) bool { return core.Concurrent(v1, v2) }

// Offline algorithm (Figure 9).

// StampOffline timestamps a completed computation with vectors of size
// equal to the width of its message poset (≤ ⌊N/2⌋, Theorem 8).
func StampOffline(tr *Trace) (*OfflineResult, error) { return offline.Stamp(tr) }

// Ground truth and analysis.

// MessageOrder returns the poset (M, ↦) of tr's messages for oracle-grade
// order queries.
func MessageOrder(tr *Trace) *Poset { return order.MessagePoset(tr) }

// ConcurrentMessages lists all concurrent message pairs from timestamps.
func ConcurrentMessages(stamps []Vector) []monitor.Pair {
	return monitor.ConcurrentMessages(stamps)
}

// Orphans computes the orphan messages for optimistic recovery: those whose
// timestamps dominate a lost message's timestamp.
func Orphans(stamps, lost []Vector) []int { return monitor.Orphans(stamps, lost) }

// CriticalPath returns the length of the longest synchronous chain in the
// stamped computation and one witness chain of message indices.
func CriticalPath(stamps []Vector) (int, []int) { return monitor.CriticalPath(stamps) }

// DetectConjunctive runs weak-conjunctive-predicate detection over
// per-process candidate internal events (Section 5 stamps): it returns a
// pairwise-concurrent cut witnessing the conjunction, if one exists.
func DetectConjunctive(candidates [][]EventStamp) ([]EventStamp, bool, error) {
	return monitor.ConjunctivePredicate(candidates)
}

// ScheduleUniform assigns virtual time to the computation with every
// message costing msgTicks and every internal event intTicks, returning the
// makespan and achieved parallelism (see internal/sim for custom costs).
func ScheduleUniform(tr *Trace, msgTicks, intTicks int) (makespan int, speedup float64, err error) {
	res, err := sim.Schedule(tr, sim.Uniform(msgTicks, intTicks))
	if err != nil {
		return 0, 0, err
	}
	return res.Makespan, res.Parallelism(), nil
}

// CSP runtime.

// Run executes one program per process over synchronous channels with the
// online algorithm's clocks piggybacked, then reconstructs the computation
// and its timestamps.
func Run(dec *Decomposition, programs []func(*Process) error, timeout time.Duration) (*RunResult, error) {
	return csp.Run(dec, programs, timeout)
}

// NewSystem prepares a CSP runtime with spare capacity for processes that
// Join while the run is live (the dynamic side of Section 3.3): Start the
// initial programs, Join newcomers with a decomposition grown by GrowClient,
// then Wait.
func NewSystem(dec *Decomposition, capacity int) *System {
	return csp.NewSystemCap(dec, capacity)
}

// Computation generation and rendering.

// GenerateTrace builds a random synchronous computation with the given
// number of messages over topo.
func GenerateTrace(topo *Topology, messages int, seed int64) *Trace {
	return trace.Generate(topo, trace.GenOptions{Messages: messages}, rand.New(rand.NewSource(seed)))
}

// WriteTrace serializes a trace in the line-oriented text format.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.WriteText(w, tr) }

// ReadTrace parses a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.ReadText(r) }

// RenderDiagram draws tr as an ASCII time diagram with vertical arrows,
// optionally annotated with message timestamps.
func RenderDiagram(tr *Trace, stamps []Vector) string {
	return vis.Render(tr, vis.Options{Stamps: stamps})
}

// Baselines (Section 6 comparisons).

// StampFM timestamps messages with Fidge–Mattern vector clocks (size N).
func StampFM(tr *Trace) []Vector { return vclock.FM{}.StampTrace(tr) }

// StampLamport timestamps messages with scalar Lamport clocks (size 1;
// order-preserving but not order-characterizing).
func StampLamport(tr *Trace) []Vector { return vclock.Lamport{}.StampTrace(tr) }

// StampChainClocks timestamps messages with centralized online chain
// clocks (the Ward-style dimension-bounded comparator of Section 6);
// the second result is the number of chains used (the vector size).
func StampChainClocks(tr *Trace) ([]Vector, int) {
	r := chainclock.StampTrace(tr)
	return r.Stamps, r.Chains
}

// Dynamic growth (Section 3.3 scalability).

// GrowClient adds a new process connected to the given star roots (e.g.
// the servers of a client-server system) and returns the grown
// decomposition and the new process id. The vector size d is unchanged, so
// timestamps issued before and after the join stay comparable; switch
// running stampers over with Stamper.Extend.
func GrowClient(dec *Decomposition, roots []int) (*Decomposition, int, error) {
	return dec.GrowStarVertex(roots)
}
