package syncstamp_test

import (
	"bytes"
	"fmt"
	"testing"

	"syncstamp"
	"syncstamp/internal/check"
)

// TestPropFacadeRoundTrip: writing a trace through the façade encoder and
// reading it back preserves the computation — same ops, same topology, and
// identical stamps under the same decomposition.
func TestPropFacadeRoundTrip(t *testing.T) {
	check.Run(t, check.Config{}, func(in *check.Input) error {
		var buf bytes.Buffer
		if err := syncstamp.WriteTrace(&buf, in.Trace); err != nil {
			return err
		}
		back, err := syncstamp.ReadTrace(&buf)
		if err != nil {
			return err
		}
		if back.N != in.Trace.N || len(back.Ops) != len(in.Trace.Ops) {
			return fmt.Errorf("round trip changed shape: N %d→%d, ops %d→%d",
				in.Trace.N, back.N, len(in.Trace.Ops), len(back.Ops))
		}
		for k := range back.Ops {
			if back.Ops[k] != in.Trace.Ops[k] {
				return fmt.Errorf("op %d changed: %v → %v", k, in.Trace.Ops[k], back.Ops[k])
			}
		}
		orig, err := syncstamp.StampTrace(in.Trace, in.Dec)
		if err != nil {
			return err
		}
		redo, err := syncstamp.StampTrace(back, in.Dec)
		if err != nil {
			return err
		}
		for m := range orig {
			if fmt.Sprint(orig[m]) != fmt.Sprint(redo[m]) {
				return fmt.Errorf("message %d restamped differently: %v vs %v", m, orig[m], redo[m])
			}
		}
		return nil
	})
}

// TestPropFacadePrecedesMatchesPoset: the façade's Precedes/Concurrent on
// façade-produced stamps agree with the façade's own MessageOrder poset —
// Theorem 4 stated entirely in the public API.
func TestPropFacadePrecedesMatchesPoset(t *testing.T) {
	check.Run(t, check.Config{}, func(in *check.Input) error {
		stamps, err := syncstamp.StampTrace(in.Trace, in.Dec)
		if err != nil {
			return err
		}
		p := syncstamp.MessageOrder(in.Trace)
		for i := range stamps {
			for j := range stamps {
				if i == j {
					continue
				}
				if got, want := syncstamp.Precedes(stamps[i], stamps[j]), p.Less(i, j); got != want {
					return fmt.Errorf("Precedes(m%d, m%d) = %v, poset says %v", i, j, got, want)
				}
				if p.Concurrent(i, j) != syncstamp.Concurrent(stamps[i], stamps[j]) {
					return fmt.Errorf("Concurrent(m%d, m%d) disagrees with poset", i, j)
				}
			}
		}
		return nil
	})
}
