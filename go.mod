module syncstamp

go 1.22
