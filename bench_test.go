// Benchmarks regenerating the performance-shaped side of every experiment in
// DESIGN.md's index: per-message stamping cost and piggyback size for the
// online algorithm vs the baselines (E13/E8), decomposition cost (E2/E3/E9),
// offline stamping (E11), precedence tests (E15), the CSP runtime (E14), and
// the oracles backing E1/E7. Run with:
//
//	go test -bench=. -benchmem
package syncstamp_test

import (
	"math/rand"
	"testing"
	"time"

	"syncstamp/internal/chainclock"
	"syncstamp/internal/cluster"
	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/offline"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
	"syncstamp/internal/vclock"
	"syncstamp/internal/vector"
)

// benchTrace builds a deterministic workload for a topology.
func benchTrace(g *graph.Graph, msgs int) *trace.Trace {
	return trace.Generate(g, trace.GenOptions{Messages: msgs}, rand.New(rand.NewSource(1)))
}

// reportPiggyback attaches the mean piggyback bytes/message metric.
func reportPiggyback(b *testing.B, stamps []vector.V) {
	b.Helper()
	if len(stamps) == 0 {
		return
	}
	total := 0
	for _, s := range stamps {
		total += s.EncodedSize()
	}
	b.ReportMetric(float64(total)/float64(len(stamps)), "piggyback-B/msg")
}

// --- E13/E8: per-message stamping cost and size, online vs baselines ---

func benchStampOnline(b *testing.B, g *graph.Graph, dec *decomp.Decomposition) {
	tr := benchTrace(g, 1000)
	var stamps []vector.V
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		stamps, err = core.StampTrace(tr, dec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportPiggyback(b, stamps)
	b.ReportMetric(float64(dec.D()), "components")
}

func benchStampFM(b *testing.B, g *graph.Graph) {
	tr := benchTrace(g, 1000)
	var stamps []vector.V
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stamps = vclock.FM{}.StampTrace(tr)
	}
	b.StopTimer()
	reportPiggyback(b, stamps)
	b.ReportMetric(float64(g.N()), "components")
}

func BenchmarkE13OnlineClientServer2x100(b *testing.B) {
	g := graph.ClientServer(2, 100, false)
	dec, err := decomp.FromVertexCover(g, []int{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	benchStampOnline(b, g, dec)
}

func BenchmarkE13FMClientServer2x100(b *testing.B) {
	benchStampFM(b, graph.ClientServer(2, 100, false))
}

func BenchmarkE13OnlineTree20(b *testing.B) {
	g := graph.Figure4Tree()
	benchStampOnline(b, g, decomp.Approximate(g))
}

func BenchmarkE13FMTree20(b *testing.B) {
	benchStampFM(b, graph.Figure4Tree())
}

func BenchmarkE13OnlineComplete32(b *testing.B) {
	g := graph.Complete(32)
	benchStampOnline(b, g, decomp.Approximate(g))
}

func BenchmarkE13FMComplete32(b *testing.B) {
	benchStampFM(b, graph.Complete(32))
}

func BenchmarkE13Lamport(b *testing.B) {
	tr := benchTrace(graph.Complete(32), 1000)
	var stamps []vector.V
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stamps = vclock.Lamport{}.StampTrace(tr)
	}
	b.StopTimer()
	reportPiggyback(b, stamps)
}

func BenchmarkE13PlausibleR4(b *testing.B) {
	tr := benchTrace(graph.Complete(32), 1000)
	var stamps []vector.V
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stamps = vclock.Plausible{R: 4}.StampTrace(tr)
	}
	b.StopTimer()
	reportPiggyback(b, stamps)
}

// E13 query-cost side of the direct-dependency tradeoff: constant piggyback
// but recursive precedence queries.
func BenchmarkE13DirectDepQuery(b *testing.B) {
	tr := benchTrace(graph.Complete(16), 500)
	dd := vclock.NewDirectDep(tr)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := rng.Intn(dd.NumMessages()), rng.Intn(dd.NumMessages())
		dd.Precedes(x, y)
	}
}

// --- E15: precedence-test cost on the stamp sizes each mechanism needs ---

func benchPrecedence(b *testing.B, d int) {
	u, v := vector.New(d), vector.New(d)
	for k := range u {
		u[k] = k
		v[k] = k + 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vector.Less(u, v)
	}
}

func BenchmarkE15PrecedenceD2(b *testing.B)   { benchPrecedence(b, 2) }
func BenchmarkE15PrecedenceD8(b *testing.B)   { benchPrecedence(b, 8) }
func BenchmarkE15PrecedenceD102(b *testing.B) { benchPrecedence(b, 102) }

// --- E2/E3/E9: decomposition algorithms ---

func BenchmarkE2Figure7Complete16(b *testing.B) {
	g := graph.Complete(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decomp.Approximate(g)
	}
}

func BenchmarkE3Figure7Tree200(b *testing.B) {
	g := graph.RandomTree(200, rand.New(rand.NewSource(3)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decomp.Approximate(g)
	}
}

func BenchmarkE9ExactSmall(b *testing.B) {
	g := graph.RandomGnp(8, 0.4, rand.New(rand.NewSource(4)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decomp.Exact(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: offline algorithm (width + realizer + position vectors) ---

func BenchmarkE11OfflineComplete10x400(b *testing.B) {
	tr := benchTrace(graph.Complete(10), 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := offline.Stamp(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11OfflineStar10x400(b *testing.B) {
	tr := benchTrace(graph.Star(10, 0), 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := offline.Stamp(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E1/E7: ground-truth oracle construction ---

func BenchmarkE7MessagePoset1000(b *testing.B) {
	tr := benchTrace(graph.Complete(12), 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order.MessagePoset(tr)
	}
}

func BenchmarkE12EventOracle(b *testing.B) {
	tr := trace.Generate(graph.Complete(8),
		trace.GenOptions{Messages: 300, InternalProb: 0.4}, rand.New(rand.NewSource(5)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order.NewEventOracle(tr)
	}
}

// --- E14: end-to-end CSP runtime throughput ---

func BenchmarkE14CSPRoundTrips(b *testing.B) {
	g := graph.Path(2)
	dec := decomp.Approximate(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := csp.Run(dec, []func(p *csp.Process) error{
			func(p *csp.Process) error {
				for k := 0; k < 100; k++ {
					if _, err := p.Send(1, k); err != nil {
						return err
					}
				}
				return nil
			},
			func(p *csp.Process) error {
				for k := 0; k < 100; k++ {
					if _, err := p.Recv(); err != nil {
						return err
					}
				}
				return nil
			},
		}, 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100, "msgs/op")
}

// --- E4: stamping the exact Figure 6 computation ---

func BenchmarkE4Figure6(b *testing.B) {
	tr := trace.Figure6()
	dec := decomp.Figure3a()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.StampTrace(tr, dec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E17: related-mechanism stamping costs ---

func BenchmarkE17ChainClocks(b *testing.B) {
	tr := benchTrace(graph.Complete(10), 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := chainclock.StampTrace(tr)
		if r.Chains == 0 {
			b.Fatal("no chains")
		}
	}
}

func BenchmarkE17SKDifferential(b *testing.B) {
	tr := benchTrace(graph.ClientServer(2, 50, false), 1000)
	var res *vclock.SKResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = vclock.Simulate(tr)
	}
	b.StopTimer()
	b.ReportMetric(res.MeanEntries(), "entries/msg")
}

// --- E19: hierarchical cluster stamping ---

func BenchmarkE19ClusterStamp(b *testing.B) {
	tr := benchTrace(graph.Complete(12), 1000)
	part, err := cluster.Contiguous(12, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Stamp(tr, part); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E18: dynamic growth cost ---

func BenchmarkE18GrowClient(b *testing.B) {
	base, err := decomp.FromVertexCover(graph.ClientServer(2, 1, false), []int{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := base.GrowStarVertex([]int{0, 1}); err != nil {
			b.Fatal(err)
		}
	}
}
