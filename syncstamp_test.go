package syncstamp_test

import (
	"strings"
	"testing"
	"time"

	"syncstamp"
)

func TestQuickstartFlow(t *testing.T) {
	topo := syncstamp.ClientServer(2, 100)
	dec := syncstamp.Decompose(topo)
	if dec.D() != 2 {
		t.Fatalf("client-server d = %d, want 2", dec.D())
	}
	s := syncstamp.NewStamper(dec)
	v1, err := s.StampMessage(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.StampMessage(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if syncstamp.Precedes(v1, v2) || syncstamp.Precedes(v2, v1) {
		t.Fatal("messages on disjoint channels must be concurrent")
	}
	if !syncstamp.Concurrent(v1, v2) {
		t.Fatal("Concurrent disagrees with Precedes")
	}
}

func TestGenerateStampRoundTrip(t *testing.T) {
	topo := syncstamp.Tree(2, 3)
	tr := syncstamp.GenerateTrace(topo, 50, 7)
	dec := syncstamp.Decompose(topo)
	stamps, err := syncstamp.StampTrace(tr, dec)
	if err != nil {
		t.Fatal(err)
	}
	p := syncstamp.MessageOrder(tr)
	for i := range stamps {
		for j := range stamps {
			if i != j && syncstamp.Precedes(stamps[i], stamps[j]) != p.Less(i, j) {
				t.Fatalf("Theorem 4 violated at (%d,%d)", i, j)
			}
		}
	}
	var b strings.Builder
	if err := syncstamp.WriteTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	back, err := syncstamp.ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumMessages() != tr.NumMessages() {
		t.Fatal("trace round trip lost messages")
	}
}

func TestOfflineFacade(t *testing.T) {
	topo := syncstamp.Complete(6)
	tr := syncstamp.GenerateTrace(topo, 40, 3)
	res, err := syncstamp.StampOffline(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Width > 3 {
		t.Fatalf("width %d > ⌊6/2⌋", res.Width)
	}
}

func TestRunFacade(t *testing.T) {
	topo := syncstamp.Star(3)
	dec := syncstamp.Decompose(topo)
	res, err := syncstamp.Run(dec, []func(*syncstamp.Process) error{
		func(p *syncstamp.Process) error {
			if _, err := p.RecvFrom(1); err != nil {
				return err
			}
			_, err := p.RecvFrom(2)
			return err
		},
		func(p *syncstamp.Process) error {
			_, err := p.Send(0, "a")
			return err
		},
		func(p *syncstamp.Process) error {
			_, err := p.Send(0, "b")
			return err
		},
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.NumMessages() != 2 {
		t.Fatalf("got %d messages", res.Trace.NumMessages())
	}
	// A star computation is totally ordered (Lemma 1): no concurrent pairs.
	if pairs := syncstamp.ConcurrentMessages(res.Stamps); len(pairs) != 0 {
		t.Fatalf("star run has concurrent pairs: %v", pairs)
	}
}

func TestDiagramAndBaselines(t *testing.T) {
	topo := syncstamp.Complete(4)
	tr := syncstamp.GenerateTrace(topo, 10, 11)
	dec := syncstamp.DecomposeFigure7(topo)
	stamps, err := syncstamp.StampTrace(tr, dec)
	if err != nil {
		t.Fatal(err)
	}
	out := syncstamp.RenderDiagram(tr, stamps)
	if !strings.Contains(out, "P1") || !strings.Contains(out, "m1 = ") {
		t.Fatalf("diagram missing content:\n%s", out)
	}
	fm := syncstamp.StampFM(tr)
	if len(fm) != 10 || len(fm[0]) != 4 {
		t.Fatal("FM baseline wrong shape")
	}
	lam := syncstamp.StampLamport(tr)
	if len(lam) != 10 || len(lam[0]) != 1 {
		t.Fatal("Lamport baseline wrong shape")
	}
}

func TestDecomposeServersAndOrphans(t *testing.T) {
	topo := syncstamp.ClientServer(3, 9)
	dec, err := syncstamp.DecomposeServers(topo, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if dec.D() != 3 {
		t.Fatalf("d = %d, want 3", dec.D())
	}
	tr := syncstamp.GenerateTrace(topo, 30, 5)
	stamps, err := syncstamp.StampTrace(tr, dec)
	if err != nil {
		t.Fatal(err)
	}
	orphans := syncstamp.Orphans(stamps, []syncstamp.Vector{stamps[0]})
	if len(orphans) == 0 || orphans[0] != 0 {
		t.Fatalf("orphans = %v", orphans)
	}
}

func TestGrowClientFacade(t *testing.T) {
	topo := syncstamp.ClientServer(2, 1)
	dec, err := syncstamp.DecomposeServers(topo, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s := syncstamp.NewStamper(dec)
	v1, err := s.StampMessage(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, newClient, err := syncstamp.GrowClient(dec, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Extend(grown); err != nil {
		t.Fatal(err)
	}
	v2, err := s.StampMessage(newClient, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !syncstamp.Precedes(v1, v2) {
		t.Fatal("messages sharing server 0 must be ordered across the join")
	}
}

func TestStampChainClocksFacade(t *testing.T) {
	topo := syncstamp.Star(5)
	tr := syncstamp.GenerateTrace(topo, 20, 4)
	stamps, chains := syncstamp.StampChainClocks(tr)
	if chains != 1 {
		t.Fatalf("star computation chains = %d, want 1", chains)
	}
	p := syncstamp.MessageOrder(tr)
	for i := range stamps {
		for j := range stamps {
			if i != j && syncstamp.Precedes(stamps[i], stamps[j]) != p.Less(i, j) {
				t.Fatalf("chain clocks wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestMonitorAndSimFacade(t *testing.T) {
	topo := syncstamp.Star(4)
	tr := syncstamp.GenerateTrace(topo, 12, 6)
	dec := syncstamp.Decompose(topo)
	stamps, err := syncstamp.StampTrace(tr, dec)
	if err != nil {
		t.Fatal(err)
	}
	length, chain := syncstamp.CriticalPath(stamps)
	if length != 12 || len(chain) != 12 {
		t.Fatalf("star computation critical path = %d (chain %v), want 12", length, chain)
	}
	makespan, speedup, err := syncstamp.ScheduleUniform(tr, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if makespan != 12 || speedup != 1 {
		t.Fatalf("makespan=%d speedup=%v, want 12 and 1 (total order)", makespan, speedup)
	}

	// Conjunctive predicate over two concurrent internal events.
	tr2 := &syncstamp.Trace{N: 2}
	tr2.MustAppend(syncstamp.Op{Kind: 1, From: 0, To: 1}) // message
	tr2.MustAppend(syncstamp.Op{Kind: 2, Proc: 0})        // internal
	tr2.MustAppend(syncstamp.Op{Kind: 2, Proc: 1})        // internal
	topo2 := syncstamp.NewTopology(2)
	topo2.AddEdge(0, 1)
	st, err := syncstamp.StampAll(tr2, syncstamp.Decompose(topo2))
	if err != nil {
		t.Fatal(err)
	}
	cut, found, err := syncstamp.DetectConjunctive([][]syncstamp.EventStamp{
		{st.Internal[0]}, {st.Internal[1]},
	})
	if err != nil || !found || len(cut) != 2 {
		t.Fatalf("found=%v err=%v cut=%v", found, err, cut)
	}
}

func TestDynamicSystemFacade(t *testing.T) {
	topo := syncstamp.ClientServer(2, 1)
	dec, err := syncstamp.DecomposeServers(topo, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	sys := syncstamp.NewSystem(dec, 6)
	server := func(p *syncstamp.Process) error {
		for i := 0; i < 2; i++ { // initial client + one joiner
			if _, err := p.Recv(); err != nil {
				return err
			}
		}
		return nil
	}
	client := func(p *syncstamp.Process) error {
		if _, err := p.Send(0, "a"); err != nil {
			return err
		}
		_, err := p.Send(1, "b")
		return err
	}
	if err := sys.Start([]func(*syncstamp.Process) error{server, server, client}); err != nil {
		t.Fatal(err)
	}
	grown, _, err := syncstamp.GrowClient(dec, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Join(grown, client); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Wait(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.NumMessages() != 4 || res.Trace.N != 4 {
		t.Fatalf("messages=%d N=%d", res.Trace.NumMessages(), res.Trace.N)
	}
	for _, s := range res.Stamps {
		if len(s) != 2 {
			t.Fatalf("stamp %v should have 2 components", s)
		}
	}
}
