// Pipeline: a staged dataflow where items stream through processes
// 0 → 1 → ... → k. The topology is a path, which decomposes into ⌈k/2⌉
// stars, and the timestamps expose the pipeline's concurrency structure:
// different stages working on different items are concurrent, and the
// critical path equals one item's end-to-end journey plus the drain.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"syncstamp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/monitor"
	"syncstamp/internal/trace"
)

const (
	stages = 5
	items  = 8
)

func main() {
	topo := graph.Path(stages)
	dec := decomp.Best(topo)
	fmt.Printf("pipeline of %d stages (path topology): d = %d vs FM's %d\n",
		stages, dec.D(), stages)

	tr := trace.Pipeline(stages, items)
	stamps, err := syncstamp.StampTrace(tr, dec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d items: %d hand-offs stamped\n", items, len(stamps))

	// Concurrency structure: stage s working on item i runs concurrently
	// with stage s' on item i' when their hand-offs are unordered.
	pairs := syncstamp.ConcurrentMessages(stamps)
	total := len(stamps) * (len(stamps) - 1) / 2
	fmt.Printf("pipeline parallelism: %d of %d hand-off pairs concurrent (%.0f%%)\n",
		len(pairs), total, 100*float64(len(pairs))/float64(total))

	// The critical path: the longest chain of serialized hand-offs. In a
	// synchronous pipeline consecutive hand-offs at a shared stage are
	// always ordered, so the chain is much longer than one item's journey —
	// exactly the kind of insight a timestamp-based profiler surfaces.
	length, chain := monitor.CriticalPath(stamps)
	fmt.Printf("critical path: %d of %d hand-offs are serialized end to end\n",
		length, len(stamps))
	fmt.Print("  witness:")
	for _, m := range chain {
		fmt.Printf(" m%d", m+1)
	}
	fmt.Println()

	// Offline view: the width is the maximum number of simultaneously
	// in-flight hand-offs, bounded by the stage count.
	off, err := syncstamp.StampOffline(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline width: %d (max concurrent hand-offs; ⌊N/2⌋ bound = %d)\n",
		off.Width, stages/2)
}
