// Tree topology: the 20-process tree of the paper's Figure 4, whose edge
// decomposition has only 3 star groups. Messages in a 20-process system are
// timestamped with 3 integers instead of 20.
//
//	go run ./examples/tree20
package main

import (
	"fmt"
	"log"

	"syncstamp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
)

func main() {
	g := graph.Figure4Tree()
	dec := decomp.Approximate(g)
	fmt.Printf("Figure 4 tree: N = %d processes, %d channels\n", g.N(), g.M())
	fmt.Printf("edge decomposition: d = %d groups (%d stars)\n", dec.D(), dec.Stars())
	for i, grp := range dec.Groups() {
		fmt.Printf("  E%d = %s\n", i+1, grp)
	}

	// A random aggregation-style workload over the tree.
	tr := syncstamp.GenerateTrace(g, 300, 2026)
	stamps, err := syncstamp.StampTrace(tr, dec)
	if err != nil {
		log.Fatal(err)
	}

	// Ground-truth agreement.
	p := syncstamp.MessageOrder(tr)
	for i := range stamps {
		for j := range stamps {
			if i != j && syncstamp.Precedes(stamps[i], stamps[j]) != p.Less(i, j) {
				log.Fatalf("order mismatch at (%d,%d)", i, j)
			}
		}
	}
	fmt.Printf("\nstamped %d messages with %d-component vectors; order is exact\n",
		len(stamps), dec.D())

	// Offline comparison: how wide was this particular computation?
	off, err := syncstamp.StampOffline(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline algorithm (Figure 9): width = %d (bound ⌊N/2⌋ = %d)\n",
		off.Width, tr.N/2)

	fmt.Println("\nsize summary for this run:")
	fmt.Printf("  %-28s %d components\n", "Fidge–Mattern:", tr.N)
	fmt.Printf("  %-28s %d components (topology-bound)\n", "online edge-decomposition:", dec.D())
	fmt.Printf("  %-28s %d components (computation-bound)\n", "offline dimension-based:", off.Width)
}
