// Debugger: the distributed-monitoring application of the paper's
// introduction. A POET-style tool renders the computation, detects
// concurrency and resource conflicts from timestamps, and computes the
// orphan set for optimistic recovery when a process rolls back.
//
//	go run ./examples/debugger
package main

import (
	"fmt"
	"log"
	"time"

	"syncstamp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/monitor"
	"syncstamp/internal/vis"
)

func main() {
	// Four workers around two coordinators; workers 2 and 3 both touch the
	// shared resource "ledger" without synchronizing — a race the monitor
	// must flag.
	topo := graph.ClientServer(2, 2, true) // coordinators 0,1 talk to each other too
	dec := decomp.Best(topo)

	res, err := syncstamp.Run(dec, []func(*syncstamp.Process) error{
		func(p *syncstamp.Process) error { // coordinator 0
			if _, err := p.RecvFrom(2); err != nil {
				return err
			}
			_, err := p.Send(1, "sync")
			return err
		},
		func(p *syncstamp.Process) error { // coordinator 1
			if _, err := p.RecvFrom(3); err != nil {
				return err
			}
			if _, err := p.RecvFrom(0); err != nil {
				return err
			}
			return nil
		},
		func(p *syncstamp.Process) error { // worker 2
			p.Internal("ledger")
			_, err := p.Send(0, "commit-a")
			return err
		},
		func(p *syncstamp.Process) error { // worker 3
			p.Internal("ledger")
			_, err := p.Send(1, "commit-b")
			return err
		},
	}, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("time diagram (vertical arrows = synchronous messages):")
	fmt.Print(vis.Render(res.Trace, vis.Options{Stamps: res.Stamps}))

	fmt.Println("\nprecedence matrix:")
	fmt.Print(vis.RenderMatrix(res.Stamps))

	// Race detection: concurrent internal events on the same resource.
	events := make([]syncstamp.EventStamp, len(res.Internal))
	resources := make([]string, len(res.Internal))
	for i, ev := range res.Internal {
		events[i] = ev.Stamp
		resources[i] = fmt.Sprint(ev.Note)
	}
	conflicts, err := monitor.FindConflicts(events, resources)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresource conflicts (concurrent, same resource):")
	for _, c := range conflicts {
		fmt.Printf("  events on P%d and P%d both touch %q concurrently\n",
			events[c.A].Proc+1, events[c.B].Proc+1, c.Resource)
	}
	if len(conflicts) == 0 {
		fmt.Println("  none")
	}

	// Critical path of rendezvous.
	length, chain := monitor.CriticalPath(res.Stamps)
	fmt.Printf("\ncritical path: %d messages:", length)
	for _, m := range chain {
		fmt.Printf(" m%d", m+1)
	}
	fmt.Println()

	// Optimistic recovery: suppose worker 2's first message is lost in a
	// rollback; which messages are orphaned?
	msgs := res.Trace.Messages()
	var lost []syncstamp.Vector
	for i, m := range msgs {
		if m.From == 2 {
			lost = append(lost, res.Stamps[i])
			break
		}
	}
	orphans := monitor.Orphans(res.Stamps, lost)
	fmt.Printf("\nif worker P3's commit rolls back, orphaned messages:")
	for _, o := range orphans {
		fmt.Printf(" m%d", o+1)
	}
	fmt.Println()
}
