// Quickstart: run a small CSP computation with the paper's online
// timestamping algorithm and query the order of its messages.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"syncstamp"
)

func main() {
	// Three processes in a triangle: one vector component suffices
	// (Lemma 1: triangle computations are always totally ordered).
	topo := syncstamp.NewTopology(3)
	topo.AddEdge(0, 1)
	topo.AddEdge(1, 2)
	topo.AddEdge(0, 2)
	dec := syncstamp.Decompose(topo)
	fmt.Printf("topology: triangle on 3 processes, vector size d = %d (FM would use 3)\n\n", dec.D())

	// P0 asks P1 to compute, P1 delegates to P2, P2 answers P0 directly.
	res, err := syncstamp.Run(dec, []func(*syncstamp.Process) error{
		func(p *syncstamp.Process) error { // P0
			if _, err := p.Send(1, "compute 6*7"); err != nil {
				return err
			}
			answer, err := p.RecvFrom(2)
			if err != nil {
				return err
			}
			fmt.Printf("P0 got answer %v with timestamp %s\n", answer.Payload, answer.Stamp)
			return nil
		},
		func(p *syncstamp.Process) error { // P1
			req, err := p.Recv()
			if err != nil {
				return err
			}
			_, err = p.Send(2, req.Payload)
			return err
		},
		func(p *syncstamp.Process) error { // P2
			req, err := p.Recv()
			if err != nil {
				return err
			}
			p.Internal("evaluating " + req.Payload.(string))
			_, err = p.Send(0, 42)
			return err
		},
	}, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nreconstructed computation:")
	fmt.Print(syncstamp.RenderDiagram(res.Trace, res.Stamps))

	fmt.Println("\norder queries from timestamps alone:")
	for i := 0; i < len(res.Stamps); i++ {
		for j := i + 1; j < len(res.Stamps); j++ {
			rel := "concurrent with"
			if syncstamp.Precedes(res.Stamps[i], res.Stamps[j]) {
				rel = "synchronously precedes"
			} else if syncstamp.Precedes(res.Stamps[j], res.Stamps[i]) {
				rel = "synchronously follows"
			}
			fmt.Printf("  m%d %s m%d\n", i+1, rel, j+1)
		}
	}
}
