// Recovery: the optimistic-recovery application of the paper's introduction
// (Strom–Yemini, Damani–Garg). A process crashes and rolls back to its last
// checkpoint; every message that causally depends on its lost state is an
// orphan and must be undone too. The timestamps identify the orphan set
// without any extra bookkeeping, and the survivors always form a consistent
// (causally closed) prefix that can be replayed.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"

	"syncstamp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/monitor"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
)

func main() {
	// A 2-server, 4-client system; clients work through both servers.
	const servers, clients = 2, 4
	topo := syncstamp.ClientServer(servers, clients)
	dec, err := decomp.FromVertexCover(topo, []int{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	tr := trace.RPCWorkload(servers, clients, 2)
	stamps, err := syncstamp.StampTrace(tr, dec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d processes, %d messages, %d-component stamps\n",
		topo.N(), len(stamps), dec.D())

	// Client P4 (process 3) crashes having checkpointed before its second
	// round: all its round-2 messages are lost.
	const crashed = 3
	var lost []syncstamp.Vector
	var lostIdx []int
	msgs := tr.Messages()
	seen := 0
	for i, m := range msgs {
		if m.From == crashed || m.To == crashed {
			seen++
			if seen > 2*servers { // first round survives the checkpoint
				lost = append(lost, stamps[i])
				lostIdx = append(lostIdx, i)
			}
		}
	}
	fmt.Printf("\nP%d rolls back past %d of its messages: ", crashed+1, len(lostIdx))
	for _, i := range lostIdx {
		fmt.Printf("m%d ", i+1)
	}
	fmt.Println()

	orphans := monitor.Orphans(stamps, lost)
	fmt.Printf("orphan set (must also roll back): %d messages:", len(orphans))
	for _, o := range orphans {
		fmt.Printf(" m%d", o+1)
	}
	fmt.Println()

	// The survivors are causally closed: no surviving message depends on an
	// orphan — so the system can resume from exactly this set.
	orphaned := make(map[int]bool, len(orphans))
	for _, o := range orphans {
		orphaned[o] = true
	}
	p := order.MessagePoset(tr)
	for i := range stamps {
		if orphaned[i] {
			continue
		}
		for _, o := range orphans {
			if p.Less(o, i) {
				log.Fatalf("survivor m%d depends on orphan m%d — recovery inconsistent", i+1, o+1)
			}
		}
	}
	fmt.Printf("\nsurvivors: %d messages, causally closed — safe recovery line found\n",
		len(stamps)-len(orphans))
	fmt.Println("(every dependency of a survivor survived; the orphan test is just a")
	fmt.Printf(" %d-component vector comparison per message)\n", dec.D())
}
