// Client-server: the paper's Section 3.3 motivating scenario. With a
// constant number of servers and any number of clients interacting through
// synchronous RPC, the online algorithm needs only #servers vector
// components per message — Fidge–Mattern needs one per process.
//
//	go run ./examples/clientserver
package main

import (
	"fmt"
	"log"
	"time"

	"syncstamp"
)

const (
	servers = 2
	clients = 12
	rpcs    = 3 // synchronous RPCs per client per server
)

func main() {
	topo := syncstamp.ClientServer(servers, clients)
	// One star rooted at each server (Theorem 5's construction).
	dec, err := syncstamp.DecomposeServers(topo, []int{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	n := servers + clients
	fmt.Printf("%d servers, %d clients: vector size d = %d; Fidge–Mattern would use %d\n",
		servers, clients, dec.D(), n)

	programs := make([]func(*syncstamp.Process) error, n)
	for s := 0; s < servers; s++ {
		programs[s] = func(p *syncstamp.Process) error {
			// Each client issues rpcs requests to each server.
			for i := 0; i < clients*rpcs; i++ {
				req, err := p.Recv()
				if err != nil {
					return err
				}
				if _, err := p.Send(req.From, fmt.Sprintf("done:%v", req.Payload)); err != nil {
					return err
				}
			}
			return nil
		}
	}
	for c := 0; c < clients; c++ {
		client := servers + c
		programs[client] = func(p *syncstamp.Process) error {
			for r := 0; r < rpcs; r++ {
				for s := 0; s < servers; s++ {
					if _, err := p.Send(s, fmt.Sprintf("job-%d-%d", p.ID(), r)); err != nil {
						return err
					}
					if _, err := p.RecvFrom(s); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}

	res, err := syncstamp.Run(dec, programs, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}

	total := res.Trace.NumMessages()
	fmt.Printf("ran %d synchronous messages; every timestamp has %d components\n", total, dec.D())

	// Show that the tiny vectors still answer order queries exactly.
	p := syncstamp.MessageOrder(res.Trace)
	agree := 0
	for i := 0; i < total; i++ {
		for j := 0; j < total; j++ {
			if i == j {
				continue
			}
			if syncstamp.Precedes(res.Stamps[i], res.Stamps[j]) == p.Less(i, j) {
				agree++
			}
		}
	}
	fmt.Printf("order agreement with ground truth: %d/%d ordered pairs\n", agree, total*(total-1))

	conc := syncstamp.ConcurrentMessages(res.Stamps)
	fmt.Printf("concurrent message pairs detected: %d\n", len(conc))

	// Overhead comparison: bytes piggybacked per message.
	online, fm := 0, 0
	fmStamps := syncstamp.StampFM(res.Trace)
	for i := range res.Stamps {
		online += res.Stamps[i].EncodedSize()
		fm += fmStamps[i].EncodedSize()
	}
	fmt.Printf("piggyback bytes/message: edge-decomp %.1f vs Fidge–Mattern %.1f\n",
		float64(online)/float64(total), float64(fm)/float64(total))
	fmt.Println("add more clients and d stays at", dec.D(), "— that is the paper's point.")
}
