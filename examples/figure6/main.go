// Figure 6: replay the exact worked example of the paper — the 5-process
// fully-connected system under the Figure 3(a) decomposition — on the real
// CSP runtime, and confirm every timestamp the paper narrates.
//
//	go run ./examples/figure6
package main

import (
	"fmt"
	"log"
	"time"

	"syncstamp"
	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
	"syncstamp/internal/vis"
)

func main() {
	tr := trace.Figure6()
	dec := decomp.Figure3a()

	fmt.Println("decomposition (Figure 3(a)):")
	for i, g := range dec.Groups() {
		fmt.Printf("  E%d = %s\n", i+1, g)
	}

	// Run it with real goroutines and rendezvous channels.
	res, err := csp.Run(dec, csp.ReplayPrograms(tr), 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nexecution (concurrent run, reconstructed):")
	fmt.Print(vis.Render(res.Trace, vis.Options{}))

	// The concurrent run may linearize concurrent messages in either order,
	// so match the paper's expected stamps by channel (each channel carries
	// exactly one message in this example).
	want := map[[2]int]syncstamp.Vector{
		{0, 1}: {1, 0, 0}, // P1 -> P2
		{3, 2}: {0, 0, 1}, // P4 -> P3
		{1, 2}: {1, 1, 1}, // P2 -> P3
		{0, 3}: {2, 0, 1}, // P1 -> P4
		{4, 2}: {1, 1, 2}, // P5 -> P3
		{1, 4}: {1, 2, 2}, // P2 -> P5
	}
	fmt.Println("\ntimestamps (paper vs this run):")
	allOK := true
	for i, m := range res.Trace.Messages() {
		expect := want[[2]int{m.From, m.To}]
		ok := vector.Eq(res.Stamps[i], expect)
		allOK = allOK && ok
		status := "OK"
		if !ok {
			status = "MISMATCH"
		}
		fmt.Printf("  m%d P%d->P%d paper=%s got=%s %s\n",
			i+1, m.From+1, m.To+1, expect, res.Stamps[i], status)
	}
	if !allOK {
		log.Fatal("figure 6 reproduction failed")
	}
	fmt.Println("\nthe message from P2 to P3 is timestamped (1,1,1), exactly as the paper narrates.")
}
