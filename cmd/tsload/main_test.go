package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunClientServerControl drives the CLI end to end with spill and the
// control replay: exit 0, spill reported, control agreement printed.
func TestRunClientServerControl(t *testing.T) {
	var out, errb bytes.Buffer
	dir := t.TempDir()
	code := run([]string{
		"-servers", "4", "-clients", "200", "-msgs", "5",
		"-zipf", "0.8", "-seed", "11", "-workers", "2",
		"-leaves", "2", "-spill-dir", dir, "-segment", "32",
		"-control",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"messages  1000",
		"verdict ok=true shards=2",
		"segments spilled",
		"control: streaming verdict agrees",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "shard-*.spill")); len(matches) != 2 {
		t.Fatalf("spill dir holds %d shard files, want 2", len(matches))
	}
}

// TestRunGnpControl drives the random-topology mode with its control
// replay.
func TestRunGnpControl(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-mode", "gnp", "-gnp-n", "16", "-gnp-p", "0.25", "-gnp-msgs", "500",
		"-seed", "3", "-leaves", "3", "-control",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "verdict ok=true shards=3") {
		t.Fatalf("output missing clean verdict:\n%s", out.String())
	}
}

// TestRunRejectsBadFlags: unknown mode and unparsable flags exit nonzero
// without touching stdout.
func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-mode", "nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("unknown mode exited %d, want 2", code)
	}
	if code := run([]string{"-clients", "noway"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
	for _, spec := range []string{"p99", "99<10ms", "p0<10ms", "p101<10ms", "p99<-1ms", "p99<nonsense"} {
		if code := run([]string{"-slo", spec}, &out, &errb); code != 2 {
			t.Fatalf("-slo %q exited %d, want 2", spec, code)
		}
	}
}

// TestRunSLOGate: a generous budget passes and prints the gate line, an
// impossible budget (1ns) exits 1 naming the violation — the CI-tripwire
// behavior of -slo.
func TestRunSLOGate(t *testing.T) {
	args := func(slo string) []string {
		return []string{
			"-servers", "2", "-clients", "50", "-msgs", "2",
			"-seed", "5", "-workers", "2", "-slo", slo,
		}
	}
	var out, errb bytes.Buffer
	if code := run(args("p99<10m"), &out, &errb); code != 0 {
		t.Fatalf("generous SLO exited %d\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "slo       p99 <= ") {
		t.Fatalf("no SLO gate line:\n%s", out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run(args("p99<1ns"), &out, &errb); code != 1 {
		t.Fatalf("impossible SLO exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "SLO violated") {
		t.Fatalf("violation not reported:\n%s", errb.String())
	}
}
