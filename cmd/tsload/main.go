// Command tsload is the open-loop load driver: it simulates a client
// population timestamping rendezvous against a server pool (or a random
// G(n,p) topology), streams every logged record through the sharded
// collector tree, and reports offered-vs-achieved rate, latency
// percentiles, spill accounting, and the tree's verification verdict.
//
// Usage:
//
//	tsload -servers 16 -clients 100000 -msgs 1 -zipf 0.9 \
//	       -leaves 4 -spill-dir /tmp/spill
//	tsload -mode gnp -gnp-n 64 -gnp-p 0.1 -gnp-msgs 50000 -leaves 2
//
// The workload is fixed before the run by -seed (open loop): a Poisson or
// uniform arrival schedule per client, server popularity skewed by -zipf.
// -rate paces arrivals to an aggregate offered rate; latency is then
// measured from each request's scheduled due time, so queueing under
// saturation shows up in the percentiles. Unpaced runs (-rate 0) measure
// raw throughput.
//
// -control reruns the workload at the same seed with logs retained, then
// replays the whole trace through the sequential oracle and compares: the
// streaming verdict and the replay must agree, or tsload exits nonzero.
//
// -slo gates the run on a latency percentile ("p99<10ms"): a violated
// budget exits nonzero, making tsload usable as a CI regression tripwire.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"syncstamp/internal/check"
	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/load"
	"syncstamp/internal/node"
	"syncstamp/internal/obs"
	"syncstamp/internal/vector"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mode    = fs.String("mode", "clientserver", "workload: clientserver or gnp")
		servers = fs.Int("servers", 8, "server pool size (clientserver mode)")
		clients = fs.Int("clients", 1000, "client population (clientserver mode)")
		msgs    = fs.Int("msgs", 10, "messages per client (clientserver mode)")
		rate    = fs.Float64("rate", 0, "aggregate offered rate in msgs/sec; 0 = unpaced")
		arrival = fs.String("arrival", "poisson", "inter-arrival distribution: poisson or uniform")
		zipf    = fs.Float64("zipf", 0, "server popularity skew exponent (0 = uniform)")
		seed    = fs.Int64("seed", 1, "workload seed")
		workers = fs.Int("workers", 4, "driver goroutines (1 = deterministic)")

		leaves   = fs.Int("leaves", 1, "collector tree width")
		spillDir = fs.String("spill-dir", "", "spill verified segments to this directory")
		segment  = fs.Int("segment", 4096, "spill segment size in records")

		gnpN    = fs.Int("gnp-n", 32, "process count (gnp mode)")
		gnpP    = fs.Float64("gnp-p", 0.2, "edge probability (gnp mode)")
		gnpMsgs = fs.Int("gnp-msgs", 10000, "message count (gnp mode)")

		control = fs.Bool("control", false, "cross-check the verdict against a whole-trace sequential replay")
		slo     = fs.String("slo", "", `latency SLO gate, e.g. "p99<10ms" or "p50<500us"; violation exits nonzero`)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sloQ, sloBound, err := parseSLO(*slo)
	if err != nil {
		fmt.Fprintf(stderr, "tsload: %v\n", err)
		return 2
	}
	tc := node.TreeConfig{Leaves: *leaves, SpillDir: *spillDir, SegmentRecords: *segment}
	reg := obs.NewRegistry()

	var res *load.Result
	switch *mode {
	case "clientserver":
		cfg := load.Config{
			Servers:           *servers,
			Clients:           *clients,
			MessagesPerClient: *msgs,
			RatePerSec:        *rate,
			Arrival:           load.Arrival(*arrival),
			ZipfTheta:         *zipf,
			Seed:              *seed,
			Workers:           *workers,
			Tree:              tc,
			Registry:          reg,
		}
		cfg.Tree.KeepLogs = *control
		res, err = load.Run(cfg)
	case "gnp":
		cfg := load.GnpConfig{
			N: *gnpN, P: *gnpP, Messages: *gnpMsgs, Seed: *seed,
			Tree: tc, Registry: reg,
		}
		cfg.Tree.KeepLogs = *control
		res, err = load.RunGnp(cfg)
	default:
		fmt.Fprintf(stderr, "tsload: unknown mode %q\n", *mode)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "tsload: %v\n", err)
		return 1
	}

	report(stdout, res)
	if *control {
		if err := controlReplay(res); err != nil {
			fmt.Fprintf(stderr, "tsload: control replay: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "control: streaming verdict agrees with the whole-trace sequential replay")
	}
	if !res.Verdict.OK {
		fmt.Fprintln(stderr, "tsload: verification FAILED")
		return 1
	}
	if sloQ != 0 {
		got := res.Latency.Quantile(sloQ)
		if got > int64(sloBound) {
			fmt.Fprintf(stderr, "tsload: SLO violated: p%g <= %v, budget %v\n",
				sloQ*100, time.Duration(got), sloBound)
			return 1
		}
		fmt.Fprintf(stdout, "slo       p%g <= %v within %v\n", sloQ*100, time.Duration(got), sloBound)
	}
	return 0
}

// parseSLO parses a "-slo p99<10ms" gate into a quantile and a duration
// budget; an empty spec means no gate (quantile 0).
func parseSLO(spec string) (q float64, bound time.Duration, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	name, budget, found := strings.Cut(spec, "<")
	if !found || !strings.HasPrefix(name, "p") {
		return 0, 0, fmt.Errorf(`bad -slo %q (want "pNN<duration", e.g. "p99<10ms")`, spec)
	}
	pct, perr := strconv.ParseFloat(name[1:], 64)
	if perr != nil || pct <= 0 || pct > 100 {
		return 0, 0, fmt.Errorf("bad -slo quantile %q (want p50, p90, p99, ...)", name)
	}
	bound, err = time.ParseDuration(strings.TrimSpace(budget))
	if err != nil || bound <= 0 {
		return 0, 0, fmt.Errorf("bad -slo budget %q (want a positive duration like 10ms)", budget)
	}
	return pct / 100, bound, nil
}

// report prints the run's outcome: rates, percentiles, tree accounting.
func report(w io.Writer, res *load.Result) {
	fmt.Fprintf(w, "messages  %d in %v (%.0f msgs/sec achieved", res.Messages, res.Elapsed.Round(time.Millisecond), res.AchievedPerSec)
	if res.OfferedPerSec > 0 {
		fmt.Fprintf(w, ", %.0f offered", res.OfferedPerSec)
	}
	fmt.Fprintln(w, ")")
	fmt.Fprintf(w, "latency   p50 <= %v  p99 <= %v\n",
		time.Duration(res.P50()), time.Duration(res.P99()))
	v := res.Verdict
	fmt.Fprintf(w, "collector %d shards, %d segments spilled (%d bytes), max %d records resident\n",
		v.Shards, v.SegmentsSpilled, v.SpillBytes, v.MaxResident)
	fmt.Fprintln(w, v.String())
}

// controlReplay reconstructs the retained logs and replays the whole trace
// sequentially: stamps must match and the exact-order oracle must hold —
// the classical verdict the streaming tree claims to reproduce.
func controlReplay(res *load.Result) error {
	if res.Logs == nil || res.Dec == nil {
		return fmt.Errorf("no logs retained")
	}
	dec := res.Dec
	r, err := csp.Reconstruct(dec, res.Logs)
	if err != nil {
		return err
	}
	if int64(r.Trace.NumMessages()) != res.Messages {
		return fmt.Errorf("replay reconstructed %d messages, run drove %d", r.Trace.NumMessages(), res.Messages)
	}
	seq, err := core.StampTrace(r.Trace, dec)
	if err != nil {
		return err
	}
	for m := range seq {
		if !vector.Eq(seq[m], r.Stamps[m]) {
			return fmt.Errorf("message %d: driven stamp %v, sequential stamp %v", m, r.Stamps[m], seq[m])
		}
	}
	return check.ExactMatch(r.Trace, func(m1, m2 int) bool {
		return vector.Less(r.Stamps[m1], r.Stamps[m2])
	})
}
