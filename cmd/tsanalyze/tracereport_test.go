package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/obs"
	"syncstamp/internal/vector"
)

// writeObsTrace runs a small in-process computation under tracing and
// writes its JSONL export to a temp file.
func writeObsTrace(t *testing.T) string {
	t.Helper()
	dec := decomp.Approximate(graph.Path(3))
	programs := []func(*csp.Process) error{
		func(p *csp.Process) error {
			if _, err := p.Send(1, "a"); err != nil {
				return err
			}
			_, err := p.RecvFrom(1)
			return err
		},
		func(p *csp.Process) error {
			if _, err := p.RecvFrom(0); err != nil {
				return err
			}
			if _, err := p.RecvFrom(2); err != nil {
				return err
			}
			p.Internal("mid")
			_, err := p.Send(0, "b")
			return err
		},
		func(p *csp.Process) error {
			_, err := p.Send(1, "c")
			return err
		},
	}
	o := obs.New()
	o.Clock = &obs.Manual{}
	if _, err := csp.RunObs(dec, programs, 10*time.Second, o); err != nil {
		t.Fatal(err)
	}
	meta, err := obs.NewMeta(-1, dec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, meta, o.Tracer.Events()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTraceReport(t *testing.T) {
	path := writeObsTrace(t)
	chrome := filepath.Join(t.TempDir(), "run.chrome.json")
	code, out, errOut := runTool(t, nil, "trace-report", "-chrome", chrome, path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{
		"trace-report: 1 file(s), nodes [-1], N=3 processes",
		"3 messages, 1 internal events",
		"verified: span stamps match the sequential replay",
		"causal latency (ticks): 3 sends",
		"wire traffic: none recorded (in-process run)",
		"chrome trace written to",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "traceEvents") {
		t.Fatalf("chrome export malformed:\n%s", data)
	}
}

// TestTraceReportRejectsBadStamps pins the oracle: a trace whose recorded
// stamps disagree with the sequential replay must fail verification.
func TestTraceReportRejectsBadStamps(t *testing.T) {
	dec := decomp.Approximate(graph.Path(2))
	meta, err := obs.NewMeta(0, dec)
	if err != nil {
		t.Fatal(err)
	}
	events := []obs.Event{
		{Proc: 0, Peer: 1, Seq: 0, Phase: obs.PhaseSyn, Stamp: vector.V{0}},
		{Proc: 0, Peer: 1, Seq: 1, Phase: obs.PhaseAdopt, Stamp: vector.V{5}},
		{Proc: 1, Peer: 0, Seq: 0, Phase: obs.PhaseMerge, Stamp: vector.V{5}},
		{Proc: 1, Peer: 0, Seq: 1, Phase: obs.PhaseAck, Stamp: vector.V{5}},
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, meta, events); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runTool(t, nil, "trace-report", path)
	if code == 0 {
		t.Fatal("trace with corrupted stamps passed verification")
	}
	if !strings.Contains(errOut, "span ordering check failed") {
		t.Fatalf("unexpected error: %s", errOut)
	}
}

func TestTraceReportErrors(t *testing.T) {
	good := writeObsTrace(t)
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"trace-report"},                                             // no files
		{"trace-report", "/nonexistent"},                             // missing file
		{"trace-report", empty},                                      // no meta record
		{"trace-report", "-zzz", good},                               // bad flag
		{"trace-report", good, empty},                                // second file unreadable
		{"trace-report", "-chrome", "/nonexistent/dir/x.json", good}, // bad chrome path
	}
	for _, args := range cases {
		if code, _, _ := runTool(t, nil, args...); code == 0 {
			t.Errorf("args %v succeeded, want failure", args)
		}
	}
}
