package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"syncstamp/internal/check"
	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/obs"
	"syncstamp/internal/vector"
)

// runTraceReport implements the trace-report subcommand: ingest one JSONL
// trace per node (or a single in-process trace), reconstruct the computation
// from the recorded spans, verify the span stamps against the sequential
// Figure 5 replay and the ground-truth message poset, and print causal
// latency and wire-traffic summaries. All output is derived from stamps and
// frame accounting — never from wall clocks — so it is byte-stable across
// runs of the same computation.
func runTraceReport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsanalyze trace-report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	chromeOut := fs.String("chrome", "", "write a Chrome trace_event file here (chrome://tracing, Perfetto)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "tsanalyze:", err)
		return 1
	}
	files := fs.Args()
	if len(files) == 0 {
		return fail(fmt.Errorf("trace-report needs at least one JSONL trace file"))
	}

	metas, events, nodes, dec, err := readTraces(files)
	if err != nil {
		return fail(err)
	}

	res, err := csp.Reconstruct(dec, csp.LogsFromEvents(dec.N(), events))
	if err != nil {
		return fail(fmt.Errorf("reconstructing the computation from the trace: %w", err))
	}
	fmt.Fprintf(stdout, "trace-report: %d file(s), nodes %v, N=%d processes, d=%d\n",
		len(files), nodes, dec.N(), dec.D())
	fmt.Fprintf(stdout, "events: %d records — %d messages, %d internal events\n",
		len(events), res.Trace.NumMessages(), len(res.Internal))
	if err := verifyTrace(res, dec); err != nil {
		return fail(fmt.Errorf("span ordering check failed: %w", err))
	}
	fmt.Fprintln(stdout, "verified: span stamps match the sequential replay and characterize the message order exactly")

	printCausalLatency(stdout, events)
	printWireTraffic(stdout, metas)

	if *chromeOut != "" {
		if err := writeChromeFile(*chromeOut, events); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "chrome trace written to %s\n", *chromeOut)
	}
	return 0
}

// verifyTrace checks a reconstructed trace against its two oracles: the
// sequential Figure 5 replay (byte-identical stamps) and the ground-truth
// message poset (Theorem 4 comparability, via order.MessagePoset).
func verifyTrace(res *csp.Result, dec *decomp.Decomposition) error {
	seq, err := core.StampTrace(res.Trace, dec)
	if err != nil {
		return err
	}
	if len(seq) != len(res.Stamps) {
		return fmt.Errorf("trace recorded %d stamps, sequential replay yields %d", len(res.Stamps), len(seq))
	}
	for m := range seq {
		if !vector.Eq(seq[m], res.Stamps[m]) {
			return fmt.Errorf("message %d: recorded stamp %v, sequential stamp %v", m, res.Stamps[m], seq[m])
		}
	}
	return check.ExactMatch(res.Trace, func(m1, m2 int) bool {
		return vector.Less(res.Stamps[m1], res.Stamps[m2])
	})
}

// printCausalLatency buckets each send's causal latency (the stamp-sum
// growth across its rendezvous) on the fixed tick edges.
func printCausalLatency(w io.Writer, events []obs.Event) {
	h := obs.NewHistogram(obs.TickEdges)
	for _, l := range obs.CausalLatencies(events) {
		h.Observe(l)
	}
	snap := h.Snapshot()
	fmt.Fprintf(w, "causal latency (ticks): %d sends", snap.Count)
	if snap.Count > 0 {
		fmt.Fprintf(w, ", mean %.1f, p50<=%d, p90<=%d, max<=%d",
			float64(snap.Sum)/float64(snap.Count), snap.Quantile(0.5), snap.Quantile(0.9), snap.Quantile(1))
	}
	fmt.Fprintln(w)
	for i, c := range snap.Counts {
		if c == 0 {
			continue
		}
		if i < len(snap.Edges) {
			fmt.Fprintf(w, "  <=%-4d %d\n", snap.Edges[i], c)
		} else {
			fmt.Fprintf(w, "  >%-4d  %d\n", snap.Edges[len(snap.Edges)-1], c)
		}
	}
}

// printWireTraffic aggregates the per-node frame accounting from the meta
// headers into one table, sorted by frame kind name.
func printWireTraffic(w io.Writer, metas []obs.Meta) {
	agg := make(map[string]obs.FrameStats)
	for _, m := range metas {
		var kinds []string
		for k := range m.Frames {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			a := agg[k]
			a.Frames += m.Frames[k].Frames
			a.Bytes += m.Frames[k].Bytes
			agg[k] = a
		}
	}
	if len(agg) == 0 {
		fmt.Fprintln(w, "wire traffic: none recorded (in-process run)")
		return
	}
	var kinds []string
	for k := range agg {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintln(w, "wire traffic by frame kind:")
	var frames, bytes int
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-9s %4d frames %8d bytes\n", k, agg[k].Frames, agg[k].Bytes)
		frames += agg[k].Frames
		bytes += agg[k].Bytes
	}
	fmt.Fprintf(w, "  %-9s %4d frames %8d bytes\n", "total", frames, bytes)
}

// writeChromeFile exports the merged events as a Chrome trace_event file
// whose cross-process ordering comes from the vector stamps.
func writeChromeFile(path string, events []obs.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChrome(f, events); err != nil {
		_ = f.Close() // the write error is the one to report
		return err
	}
	return f.Close()
}
