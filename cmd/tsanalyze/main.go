// Command tsanalyze inspects a recorded synchronous computation using only
// its timestamps, the way a monitoring/debugging tool would (Section 1 of
// the paper): summary statistics, the rendezvous critical path, concurrency
// structure, and what-if orphan analysis for optimistic recovery.
//
// Usage:
//
//	tsgen -topology clientserver:2x6 -messages 40 | tsanalyze
//	tsanalyze -trace run.trace -lost 3 -diagram
//
// The "trace-report" subcommand instead ingests the JSONL event traces the
// runtimes export (csp.RunObs, tsnode -obs-trace), verifies the recorded
// spans against a full reconstruction of the computation, and summarizes
// causal latency and wire traffic:
//
//	tsanalyze trace-report -chrome run.chrome.json node0.jsonl node1.jsonl
//
// The "critical-path" subcommand profiles the same JSONL traces causally:
// it rebuilds the happens-before DAG from the stamps, extracts the longest
// weighted causal chain (in causal ticks, so the report is byte-identical
// across runs), and prints per-process slack plus a ranked blame table of
// rendezvous links:
//
//	tsanalyze critical-path node0.jsonl node1.jsonl node2.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/monitor"
	"syncstamp/internal/offline"
	"syncstamp/internal/sim"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
	"syncstamp/internal/vis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "trace-report" {
		return runTraceReport(args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "critical-path" {
		return runCriticalPath(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("tsanalyze", flag.ContinueOnError)
	traceFile := fs.String("trace", "", "trace file (default stdin)")
	lost := fs.Int("lost", -1, "message index to treat as rolled back (orphan what-if)")
	diagram := fs.Bool("diagram", false, "render the time diagram")
	maxPairs := fs.Int("pairs", 10, "max concurrent pairs to list")
	jsonOut := fs.Bool("json", false, "emit the analysis as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var in io.Reader = stdin
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(stderr, "tsanalyze:", err)
			return 1
		}
		defer func() {
			_ = f.Close() // read-only file
		}()
		in = f
	}
	tr, err := trace.ReadText(in)
	if err != nil {
		fmt.Fprintln(stderr, "tsanalyze:", err)
		return 1
	}
	if tr.NumMessages() == 0 {
		fmt.Fprintln(stderr, "tsanalyze: trace has no messages")
		return 1
	}

	dec := decomp.Best(tr.Topology())
	stamps, err := core.StampTrace(tr, dec)
	if err != nil {
		fmt.Fprintln(stderr, "tsanalyze:", err)
		return 1
	}
	off, err := offline.Stamp(tr)
	if err != nil {
		fmt.Fprintln(stderr, "tsanalyze:", err)
		return 1
	}

	m := len(stamps)
	stats := monitor.Stats(stamps)
	pairs := monitor.ConcurrentMessages(stamps)
	length, chain := monitor.CriticalPath(stamps)
	sched, err := sim.Schedule(tr, sim.Uniform(1, 1))
	if err != nil {
		fmt.Fprintln(stderr, "tsanalyze:", err)
		return 1
	}
	var orphans []int
	if *lost >= 0 {
		if *lost >= m {
			fmt.Fprintf(stderr, "tsanalyze: -lost %d out of range (have %d messages)\n", *lost, m)
			return 1
		}
		orphans = monitor.Orphans(stamps, []vector.V{stamps[*lost]})
	}

	if *jsonOut {
		report := struct {
			Processes        int     `json:"processes"`
			Messages         int     `json:"messages"`
			InternalEvents   int     `json:"internal_events"`
			OnlineD          int     `json:"online_d"`
			OfflineWidth     int     `json:"offline_width"`
			FMSize           int     `json:"fm_size"`
			ConcurrentPairs  int     `json:"concurrent_pairs"`
			ConcurrencyRatio float64 `json:"concurrency_ratio"`
			CriticalPath     []int   `json:"critical_path"`
			Makespan         int     `json:"makespan_unit_costs"`
			Speedup          float64 `json:"speedup"`
			Lost             *int    `json:"lost,omitempty"`
			Orphans          []int   `json:"orphans,omitempty"`
		}{
			Processes:        tr.N,
			Messages:         m,
			InternalEvents:   tr.NumInternal(),
			OnlineD:          dec.D(),
			OfflineWidth:     off.Width,
			FMSize:           tr.N,
			ConcurrentPairs:  stats.ConcurrentPairs,
			ConcurrencyRatio: stats.ConcurrencyRatio,
			CriticalPath:     chain,
			Makespan:         sched.Makespan,
			Speedup:          sched.Parallelism(),
		}
		if *lost >= 0 {
			report.Lost = lost
			report.Orphans = orphans
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "tsanalyze:", err)
			return 1
		}
		return 0
	}

	fmt.Fprintf(stdout, "computation: N=%d processes, %d messages, %d internal events\n",
		tr.N, m, tr.NumInternal())
	fmt.Fprintf(stdout, "timestamps: online d=%d, offline width=%d (FM would use %d)\n",
		dec.D(), off.Width, tr.N)
	fmt.Fprintf(stdout, "concurrency: %d of %d message pairs concurrent (%.1f%%)\n",
		stats.ConcurrentPairs, stats.ConcurrentPairs+stats.OrderedPairs, 100*stats.ConcurrencyRatio)
	for i, p := range pairs {
		if i >= *maxPairs {
			fmt.Fprintf(stdout, "  ... and %d more\n", len(pairs)-*maxPairs)
			break
		}
		fmt.Fprintf(stdout, "  m%d ‖ m%d\n", p.I+1, p.J+1)
	}
	fmt.Fprintf(stdout, "critical path: %d rendezvous:", length)
	for _, c := range chain {
		fmt.Fprintf(stdout, " m%d", c+1)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "timing (unit costs): makespan %d ticks, speedup %.2fx over serial %d\n",
		sched.Makespan, sched.Parallelism(), sched.SerialTime)
	if *lost >= 0 {
		fmt.Fprintf(stdout, "rollback of m%d orphans %d messages:", *lost+1, len(orphans))
		for _, o := range orphans {
			fmt.Fprintf(stdout, " m%d", o+1)
		}
		fmt.Fprintln(stdout)
	}

	if *diagram {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, vis.Render(tr, vis.Options{Stamps: stamps, MaxOpsPerBand: 24}))
	}
	return 0
}
