package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = "n 4\nm 0 1\nm 2 3\nm 1 2\ni 0\nm 2 3\n"

func runTool(t *testing.T, stdin io.Reader, args ...string) (int, string, string) {
	t.Helper()
	if stdin == nil {
		stdin = strings.NewReader("")
	}
	var out, errOut bytes.Buffer
	code := run(args, stdin, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestAnalyzeFromStdin(t *testing.T) {
	code, out, errOut := runTool(t, strings.NewReader(sample))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{
		"N=4 processes, 4 messages, 1 internal",
		"online d=",
		"offline width=",
		"concurrency:",
		"critical path:",
		"timing (unit costs): makespan",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeLostAndDiagram(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "t.trace")
	if err := os.WriteFile(f, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runTool(t, nil, "-trace", f, "-lost", "0", "-diagram")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "rollback of m1 orphans") {
		t.Fatalf("missing orphan analysis:\n%s", out)
	}
	if !strings.Contains(out, "P1 -") {
		t.Fatalf("missing diagram:\n%s", out)
	}
}

func TestAnalyzePairLimit(t *testing.T) {
	// Many concurrent pairs between disjoint channels.
	var b strings.Builder
	b.WriteString("n 8\n")
	for k := 0; k < 6; k++ {
		b.WriteString("m 0 1\nm 2 3\nm 4 5\nm 6 7\n")
	}
	code, out, _ := runTool(t, strings.NewReader(b.String()), "-pairs", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "... and") {
		t.Fatalf("pair limit not applied:\n%s", out)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []struct {
		stdin string
		args  []string
	}{
		{"garbage", nil},
		{"n 3\n", nil},                           // no messages
		{sample, []string{"-lost", "99"}},        // out of range
		{"", []string{"-trace", "/nonexistent"}}, // missing file
		{sample, []string{"-zzz"}},               // bad flag
	}
	for _, tc := range cases {
		if code, _, _ := runTool(t, strings.NewReader(tc.stdin), tc.args...); code == 0 {
			t.Errorf("args %v succeeded, want failure", tc.args)
		}
	}
}

func TestAnalyzeJSON(t *testing.T) {
	code, out, errOut := runTool(t, strings.NewReader(sample), "-json", "-lost", "1")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	var report struct {
		Processes    int     `json:"processes"`
		Messages     int     `json:"messages"`
		OnlineD      int     `json:"online_d"`
		OfflineWidth int     `json:"offline_width"`
		CriticalPath []int   `json:"critical_path"`
		Speedup      float64 `json:"speedup"`
		Lost         *int    `json:"lost"`
		Orphans      []int   `json:"orphans"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("stdout not JSON: %v\n%s", err, out)
	}
	if report.Processes != 4 || report.Messages != 4 {
		t.Fatalf("report = %+v", report)
	}
	if report.Lost == nil || *report.Lost != 1 || len(report.Orphans) == 0 {
		t.Fatalf("orphan fields: %+v", report)
	}
	if len(report.CriticalPath) == 0 || report.OnlineD < 1 {
		t.Fatalf("analysis fields: %+v", report)
	}
}
