package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"syncstamp/internal/decomp"
	"syncstamp/internal/obs"
)

// runCriticalPath implements the critical-path subcommand: ingest one JSONL
// trace per node, rebuild the happens-before DAG from the recorded stamps
// alone (vector.Less is the causal order — Theorem 4), and print the
// longest weighted causal chain with per-process slack and a ranked
// rendezvous-link blame table. Weights are causal ticks, not wall clocks,
// so the report is byte-identical across runs of the same computation.
func runCriticalPath(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsanalyze critical-path", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "tsanalyze:", err)
		return 1
	}
	files := fs.Args()
	if len(files) == 0 {
		return fail(fmt.Errorf("critical-path needs at least one JSONL trace file"))
	}
	_, events, nodes, dec, err := readTraces(files)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "critical-path: %d file(s), nodes %v, N=%d processes, d=%d\n",
		len(files), nodes, dec.N(), dec.D())
	if err := obs.CriticalPath(events).WriteReport(stdout); err != nil {
		return fail(err)
	}
	return 0
}

// readTraces loads and merges one or more JSONL traces, enforcing the
// schema version and that every file describes the same topology and
// decomposition. Each process is hosted by exactly one node, so the
// per-process (proc, seq) sequences from different files interleave
// without collisions.
func readTraces(files []string) (metas []obs.Meta, events []obs.Event, nodes []int, dec *decomp.Decomposition, err error) {
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		meta, evs, err := obs.ReadJSONL(f)
		_ = f.Close() // read-only file
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("%s: %w", name, err)
		}
		if meta.Version != obs.MetaVersion {
			return nil, nil, nil, nil, fmt.Errorf("%s: schema version %d, this tool reads %d", name, meta.Version, obs.MetaVersion)
		}
		metas = append(metas, meta)
		events = append(events, evs...)
		nodes = append(nodes, meta.Node)
	}
	for i := 1; i < len(metas); i++ {
		if metas[i].N != metas[0].N || metas[i].D != metas[0].D || metas[i].Dec != metas[0].Dec {
			return nil, nil, nil, nil, fmt.Errorf("%s: topology/decomposition differs from %s", files[i], files[0])
		}
	}
	dec, err = metas[0].Decomposition()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	obs.SortEvents(events)
	return metas, events, nodes, dec, nil
}
