package main

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

func TestParseProgram(t *testing.T) {
	scripts, err := parseProgram("0: send 1, internal hello world; 2: recvfrom 0, recv", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) != 2 {
		t.Fatalf("parsed %d processes, want 2", len(scripts))
	}
	want0 := []progOp{{kind: "send", arg: 1}, {kind: "internal", note: "hello world"}}
	if len(scripts[0]) != len(want0) {
		t.Fatalf("process 0: %d ops, want %d", len(scripts[0]), len(want0))
	}
	for i, op := range scripts[0] {
		if op != want0[i] {
			t.Fatalf("process 0 op %d: %+v, want %+v", i, op, want0[i])
		}
	}
	if scripts[2][0] != (progOp{kind: "recvfrom", arg: 0}) || scripts[2][1] != (progOp{kind: "recv"}) {
		t.Fatalf("process 2 ops wrong: %+v", scripts[2])
	}
}

func TestParseProgramRejects(t *testing.T) {
	cases := []string{
		"",                   // empty
		"0 send 1",           // no colon
		"0: send",            // missing peer
		"0: send 9",          // peer out of range
		"0: fly 1",           // unknown op
		"0: send 1; 0: recv", // duplicate process
		"7: recv",            // process out of range
		"0: internal",        // note missing
		"0:",                 // empty script
	}
	for _, c := range cases {
		if _, err := parseProgram(c, 3); err == nil {
			t.Errorf("program %q accepted", c)
		}
	}
}

func TestParsePlacement(t *testing.T) {
	got, err := parsePlacement("0, 1, 0", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("parsed %v", got)
	}
	for _, bad := range []string{"", "0,1", "0,1,9", "0,x,0", "0,0,0"} {
		if _, err := parsePlacement(bad, 3, 2); err == nil {
			t.Errorf("placement %q accepted (3 procs, 2 nodes)", bad)
		}
	}
}

// freeAddrs reserves n distinct localhost ports and releases them for the
// nodes to bind. The tiny reuse race is acceptable in tests.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		_ = ln.Close()
	}
	return addrs
}

// TestRunInProcessCluster drives the full tsnode flow — flags, TCP mesh,
// report, collect, verify — with three nodes inside one test process.
func TestRunInProcessCluster(t *testing.T) {
	addrs := freeAddrs(t, 3)
	addrList := strings.Join(addrs, ",")
	program := "0: recvfrom 2, send 1; 1: recvfrom 0, recvfrom 2; 2: send 0, send 1, internal done"
	common := []string{
		"-addrs", addrList,
		"-topology", "triangle",
		"-placement", "0,1,2",
		"-program", program,
	}

	outs := make([]bytes.Buffer, 3)
	errs := make([]bytes.Buffer, 3)
	codes := make([]int, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			args := append([]string{"-node", fmt.Sprint(i)}, common...)
			if i == 0 {
				args = append(args, "-collect", "-verify")
			}
			codes[i] = run(args, &outs[i], &errs[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		if codes[i] != 0 {
			t.Fatalf("node %d exited %d: %s", i, codes[i], errs[i].String())
		}
	}
	got := outs[0].String()
	if !strings.Contains(got, "reconstructed computation: 3 messages, 1 internal events") {
		t.Fatalf("collector output missing reconstruction summary:\n%s", got)
	}
	if !strings.Contains(got, "verified: distributed stamps match the sequential replay") {
		t.Fatalf("collector output missing verification line:\n%s", got)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	cases := [][]string{
		{},
		{"-node", "0", "-addrs", "a,b", "-topology", "nope:3", "-placement", "0,1", "-program", "0: recv"},
		{"-node", "5", "-addrs", "a,b", "-topology", "path:2", "-placement", "0,1", "-program", "0: recv"},
		{"-node", "0", "-addrs", "a,b", "-topology", "path:2", "-placement", "0,1", "-program", "0: hop"},
		{"-node", "0", "-addrs", "a,b", "-topology", "path:2", "-extra-edges", "0-9", "-placement", "0,1", "-program", "0: recv"},
	}
	for i, args := range cases {
		if code := run(args, &out, &errBuf); code == 0 {
			t.Errorf("case %d: bad flags %v accepted", i, args)
		}
	}
}
