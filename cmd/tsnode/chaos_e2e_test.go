package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/node"
	"syncstamp/internal/obs"
	"syncstamp/internal/vector"
)

// chaosProgram is the fixed computation the chaos e2e tests run: a path of
// three processes, one per node, with traffic crossing both node links in
// both directions. 24 messages total.
var chaosProgram = strings.Join([]string{
	"0: " + repeatOps("send 1, recvfrom 1", 6),
	"1: " + repeatOps("recvfrom 0, send 0, send 2, recvfrom 2", 6),
	"2: " + repeatOps("recvfrom 1, send 1", 6),
}, "; ")

const chaosMessages = 24

func repeatOps(ops string, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = ops
	}
	return strings.Join(parts, ", ")
}

// chaosNode is one tsnode OS process in a chaos mesh.
type chaosNode struct {
	cmd *exec.Cmd
	out bytes.Buffer
	err bytes.Buffer
}

func startChaosNode(t *testing.T, bin string, args []string) *chaosNode {
	t.Helper()
	cn := &chaosNode{cmd: exec.Command(bin, args...)}
	cn.cmd.Stdout = &cn.out
	cn.cmd.Stderr = &cn.err
	if err := cn.cmd.Start(); err != nil {
		t.Fatalf("starting tsnode: %v", err)
	}
	return cn
}

// wait blocks for process exit (bounded) and returns the exit code.
func (cn *chaosNode) wait(t *testing.T, timeout time.Duration) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cn.cmd.Wait() }()
	select {
	case <-done:
		return cn.cmd.ProcessState.ExitCode()
	case <-time.After(timeout):
		_ = cn.cmd.Process.Kill()
		<-done
		t.Fatalf("tsnode did not exit within %v\nstdout:\n%s\nstderr:\n%s",
			timeout, cn.out.String(), cn.err.String())
		return -1
	}
}

// chaosArgs builds the common flag set for one node of a chaos mesh.
func chaosArgs(i int, addrs []string, trace, journal, plan, retransmitMin string) []string {
	args := []string{
		"-node", fmt.Sprint(i),
		"-addrs", strings.Join(addrs, ","),
		"-topology", "path:3",
		"-placement", "0,1,2",
		"-program", chaosProgram,
		"-handshake-timeout", "30s",
		"-rendezvous-timeout", "60s",
		"-on-peer-loss", "wait",
		"-reconnect-window", "30s",
		"-retransmit-min", retransmitMin,
	}
	if trace != "" {
		args = append(args, "-obs-trace", trace)
	}
	if journal != "" {
		args = append(args, "-journal", journal)
	}
	if plan != "" {
		args = append(args, "-fault-plan", plan)
	}
	if i == 0 {
		args = append(args, "-collect", "-verify", "-collect-timeout", "60s")
	}
	return args
}

// TestE2EFaultPlanDeterministicTraces runs the three-node TCP mesh twice
// under an identical count-based fault plan — the node 0→1 link drops its
// first SYN/ACK frame, forcing a retransmission to mask the loss — and
// requires byte-identical JSONL traces across the two runs: the fault
// injector, the retransmission protocol, and the trace exporter must all be
// deterministic together. The retransmit interval is chosen to dominate any
// realistic localhost round trip, so the masked drop costs exactly one
// retransmitted SYN in every run (trace meta counts frames; a
// timing-dependent extra retransmit would byte-diff it).
//
// Skipped under -short: it compiles a binary and opens real sockets.
func TestE2EFaultPlanDeterministicTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping OS-process chaos test in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}
	bin := buildBinary(t, goTool, t.TempDir(), "syncstamp/cmd/tsnode")

	planPath := filepath.Join(t.TempDir(), "plan.json")
	plan := `{"seed": 7, "links": [{"from": 0, "to": 1, "dropFrames": [0]}]}`
	if err := os.WriteFile(planPath, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}

	runOnce := func() ([]string, []*chaosNode) {
		addrs := freeAddrs(t, 3)
		dir := t.TempDir()
		traces := make([]string, 3)
		nodes := make([]*chaosNode, 3)
		for i := range nodes {
			traces[i] = filepath.Join(dir, fmt.Sprintf("node%d.jsonl", i))
			nodes[i] = startChaosNode(t, bin, chaosArgs(i, addrs, traces[i], "", planPath, "2500ms"))
		}
		for i, cn := range nodes {
			if code := cn.wait(t, 90*time.Second); code != 0 {
				t.Fatalf("node %d exited %d\nstdout:\n%s\nstderr:\n%s",
					i, code, cn.out.String(), cn.err.String())
			}
		}
		return traces, nodes
	}

	traces, nodes := runOnce()
	again, _ := runOnce()

	// The drops were real and the retransmissions masked them.
	sawRetransmit := false
	for i, cn := range nodes {
		out := cn.out.String()
		if strings.Contains(out, "recovery:") && !strings.Contains(out, "recovery: 0 retransmits") {
			sawRetransmit = true
		}
		if i == 0 {
			if !strings.Contains(out, fmt.Sprintf("reconstructed computation: %d messages", chaosMessages)) {
				t.Fatalf("collector did not reconstruct %d messages:\n%s", chaosMessages, out)
			}
			if !strings.Contains(out, "verified: distributed stamps match the sequential replay") {
				t.Fatalf("collector did not verify the faulted run:\n%s", out)
			}
		}
		if !strings.Contains(out, "faults injected:") {
			t.Fatalf("node %d printed no fault summary:\n%s", i, out)
		}
	}
	if !sawRetransmit {
		t.Fatal("no node retransmitted despite the drop plan")
	}

	for i := range traces {
		a, err := os.ReadFile(traces[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(again[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 {
			t.Fatalf("node %d exported an empty trace", i)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("node %d JSONL differs across two faulted runs:\n%s\n---\n%s", i, a, b)
		}
	}
}

// TestE2EAsyncKillNineRecovers is the async-substrate acceptance run: three
// tsnode OS processes over real TCP in -async mode, every link jittered by
// a lognormal latency profile, with node 1 SIGKILLed mid-computation and
// restarted from its write-ahead journal. The adaptive RTO must carry the
// rendezvous protocol across the jitter, the restarted incarnation must
// resume the session, and the collector must verify the stitched run's
// stamps against the sequential replay — the synchronizer changes when
// frames move, never what the stamps say.
//
// Skipped under -short: it compiles a binary, opens sockets, and kills a
// process.
func TestE2EAsyncKillNineRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping async kill -9 e2e in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}
	bin := buildBinary(t, goTool, t.TempDir(), "syncstamp/cmd/tsnode")

	dir := t.TempDir()
	addrs := freeAddrs(t, 3)
	journals := make([]string, 3)
	for i := range journals {
		journals[i] = filepath.Join(dir, fmt.Sprintf("node%d.journal", i))
	}
	// The jitter stretches the run past the kill point; -async replaces the
	// fixed backoff with the per-peer adaptive RTO that has to ride it out.
	asyncArgs := func(i int) []string {
		journal := ""
		if i != 0 {
			journal = journals[i]
		}
		return append(chaosArgs(i, addrs, "", journal, "", "250ms"),
			"-async", "-rtt-init", "30ms", "-jitter-profile", "lognormal:10:0.5")
	}

	n0 := startChaosNode(t, bin, asyncArgs(0))
	n1 := startChaosNode(t, bin, asyncArgs(1))
	n2 := startChaosNode(t, bin, asyncArgs(2))

	killed := false
	var restarts int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(400 * time.Millisecond)
		done := make(chan error, 1)
		go func() { done <- n1.cmd.Wait() }()
		select {
		case <-done:
			return // finished before the axe fell
		default:
		}
		killed = true
		_ = n1.cmd.Process.Kill() // SIGKILL: no defers, no goodbye
		<-done
		for {
			restarts++
			cn := startChaosNode(t, bin, asyncArgs(1))
			code := cn.wait(t, 120*time.Second)
			n1 = cn
			if code == 0 {
				return
			}
			if restarts > 20 {
				t.Errorf("node 1 still failing after %d restarts (last exit %d)\nstdout:\n%s\nstderr:\n%s",
					restarts, code, cn.out.String(), cn.err.String())
				return
			}
		}
	}()

	code0 := n0.wait(t, 180*time.Second)
	code2 := n2.wait(t, 180*time.Second)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	t.Logf("killed=%v restarts=%d", killed, restarts)
	if code0 != 0 {
		t.Fatalf("collector exited %d\nstdout:\n%s\nstderr:\n%s", code0, n0.out.String(), n0.err.String())
	}
	if code2 != 0 {
		t.Fatalf("node 2 exited %d\nstdout:\n%s\nstderr:\n%s", code2, n2.out.String(), n2.err.String())
	}
	out0 := n0.out.String()
	if !strings.Contains(out0, fmt.Sprintf("reconstructed computation: %d messages", chaosMessages)) {
		t.Fatalf("collector did not reconstruct %d messages:\n%s", chaosMessages, out0)
	}
	if !strings.Contains(out0, "verified: distributed stamps match the sequential replay") {
		t.Fatalf("collector did not verify the async run:\n%s", out0)
	}
	if !strings.Contains(out0, "tsnode: async:") {
		t.Fatalf("collector printed no synchronizer summary:\n%s", out0)
	}
	if killed && !strings.Contains(n1.out.String(), "restart #") {
		t.Fatalf("node 1 was SIGKILLed but its final incarnation did not resume from the journal:\n%s", n1.out.String())
	}
}

// TestE2EKillNineRecoverySoak is the crash-recovery soak: three tsnode OS
// processes over TCP, where node 1 is killed with SIGKILL mid-run and node 2
// kills itself (exit 137, no graceful shutdown) on a scheduled fault-plan
// crash — repeatedly, since the restarted incarnation runs the same plan.
// Both keep write-ahead journals; the harness restarts each dead node with
// identical flags until it completes, and the collector verifies the stamps
// of the stitched-together run against the sequential replay. The traces
// then go through "tsanalyze trace-report" as an independent oracle.
//
// The two seeds also split the journal commit mode: seed 1 runs the default
// group commit (one fsync covers a batch of records, so the SIGKILL lands
// between batch commits and may tear a multi-record batch mid-line), seed 2
// runs -journal-sync each (the fsync-per-record baseline). Recovery must
// stitch the run back together identically in both modes.
//
// Skipped under -short: it compiles binaries, opens sockets, and kills
// processes.
func TestE2EKillNineRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping kill -9 soak in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}
	binDir := t.TempDir()
	bin := buildBinary(t, goTool, binDir, "syncstamp/cmd/tsnode")
	tsanalyze := buildBinary(t, goTool, binDir, "syncstamp/cmd/tsanalyze")

	for _, tc := range []struct {
		seed int64
		sync string
	}{{1, "group"}, {2, "each"}} {
		seed, syncMode := tc.seed, tc.sync
		t.Run(fmt.Sprintf("seed%d-%s", seed, syncMode), func(t *testing.T) {
			dir := t.TempDir()
			addrs := freeAddrs(t, 3)
			traces := make([]string, 3)
			journals := make([]string, 3)
			flights := make([]string, 3)
			for i := range traces {
				traces[i] = filepath.Join(dir, fmt.Sprintf("node%d.jsonl", i))
				journals[i] = filepath.Join(dir, fmt.Sprintf("node%d.journal", i))
				flights[i] = filepath.Join(dir, fmt.Sprintf("node%d.flight.jsonl", i))
			}
			// Delays stretch the run so the SIGKILL lands mid-computation;
			// node 2 additionally crashes itself every 10 egress frames.
			planPath := filepath.Join(dir, "plan.json")
			plan := fmt.Sprintf(`{"seed": %d,
				"links": [{"from": -1, "to": -1, "delayMs": 15, "delayProb": 1}],
				"crashes": [{"node": 2, "afterFrames": 10}]}`, seed)
			if err := os.WriteFile(planPath, []byte(plan), 0o644); err != nil {
				t.Fatal(err)
			}

			// Journal-bearing nodes carry this subtest's commit mode. Every
			// node keeps a flight recorder with a dump path: crashes and peer
			// losses snapshot the ring, and each surviving incarnation's
			// end-of-run dump overwrites with the full journal-restored
			// history.
			journalArgs := func(i int) []string {
				return append(chaosArgs(i, addrs, traces[i], journals[i], planPath, "250ms"),
					"-journal-sync", syncMode, "-flight-dump", flights[i])
			}
			n0 := startChaosNode(t, bin, append(chaosArgs(0, addrs, traces[0], "", planPath, "250ms"),
				"-flight-dump", flights[0]))
			n1 := startChaosNode(t, bin, journalArgs(1))
			n2 := startChaosNode(t, bin, journalArgs(2))

			// Kill node 1 the hard way once the mesh is busy, then restart it
			// from its journal.
			var n1restarts int
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(600 * time.Millisecond)
				done := make(chan error, 1)
				go func() { done <- n1.cmd.Wait() }()
				select {
				case <-done:
					// Finished before the axe fell; nothing to recover.
					return
				default:
				}
				_ = n1.cmd.Process.Kill() // SIGKILL: no defers, no goodbye
				<-done
				for {
					n1restarts++
					cn := startChaosNode(t, bin, journalArgs(1))
					code := cn.wait(t, 120*time.Second)
					n1 = cn
					if code == 0 {
						return
					}
					// Nonzero exits are retried: a restart racing the peers'
					// detection of the death can be refused once as a
					// duplicate session.
					if n1restarts > 20 {
						t.Errorf("node 1 still failing after %d restarts (last exit %d)\nstdout:\n%s\nstderr:\n%s",
							n1restarts, code, cn.out.String(), cn.err.String())
						return
					}
				}
			}()

			// Node 2 crashes on schedule; restart it until the journal carries
			// it past the remaining work.
			var n2restarts int
			wg.Add(1)
			go func() {
				defer wg.Done()
				cn := n2
				for {
					code := cn.wait(t, 120*time.Second)
					n2 = cn
					if code == 0 {
						return
					}
					n2restarts++
					if n2restarts > 20 {
						t.Errorf("node 2 still failing after %d restarts (last exit %d)\nstdout:\n%s\nstderr:\n%s",
							n2restarts, code, cn.out.String(), cn.err.String())
						return
					}
					cn = startChaosNode(t, bin, journalArgs(2))
				}
			}()

			code0 := n0.wait(t, 180*time.Second)
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
			if code0 != 0 {
				t.Fatalf("collector exited %d\nstdout:\n%s\nstderr:\n%s",
					code0, n0.out.String(), n0.err.String())
			}
			if n2restarts == 0 {
				t.Fatal("node 2 never hit its scheduled crash; the soak tested nothing")
			}
			out0 := n0.out.String()
			if !strings.Contains(out0, fmt.Sprintf("reconstructed computation: %d messages", chaosMessages)) {
				t.Fatalf("collector did not reconstruct %d messages:\n%s", chaosMessages, out0)
			}
			if !strings.Contains(out0, "verified: distributed stamps match the sequential replay") {
				t.Fatalf("collector did not verify the crash-recovered run:\n%s", out0)
			}
			finalN2 := n2.out.String()
			if !strings.Contains(finalN2, "restart #") {
				t.Fatalf("node 2's final incarnation did not resume from its journal:\n%s", finalN2)
			}

			// Independent oracle over the exported traces. Crashed
			// incarnations never export; the surviving ones carry the full
			// journal-restored history.
			args := append([]string{"trace-report"}, traces...)
			out, err := exec.Command(tsanalyze, args...).CombinedOutput()
			if err != nil {
				t.Fatalf("tsanalyze trace-report: %v\n%s", err, out)
			}
			report := string(out)
			if !strings.Contains(report, fmt.Sprintf("%d messages", chaosMessages)) {
				t.Fatalf("trace-report missed the computation:\n%s", report)
			}
			if !strings.Contains(report, "verified: span stamps match the sequential replay") {
				t.Fatalf("trace-report did not verify the spans:\n%s", report)
			}

			// The kill -9 soak must leave a flight dump per node, and the
			// merged dumps must replay-verify against the sequential oracle:
			// the journal restores the committed history through the obs
			// hooks, so the final dumps are a complete causal post-mortem
			// despite the crashes.
			var merged []obs.Event
			for i, path := range flights {
				events, err := node.ReadFlightDump(path)
				if err != nil {
					t.Fatalf("node %d flight dump: %v", i, err)
				}
				if len(events) == 0 {
					t.Fatalf("node %d left an empty flight dump", i)
				}
				merged = append(merged, events...)
			}
			dec := decomp.Best(graph.Path(3))
			res, err := csp.Reconstruct(dec, csp.LogsFromEvents(dec.N(), merged))
			if err != nil {
				t.Fatalf("reconstructing from flight dumps: %v", err)
			}
			if res.Trace.NumMessages() != chaosMessages {
				t.Fatalf("flight dumps reconstruct %d messages, run carried %d",
					res.Trace.NumMessages(), chaosMessages)
			}
			seq, err := core.StampTrace(res.Trace, dec)
			if err != nil {
				t.Fatal(err)
			}
			for m := range seq {
				if !vector.Eq(seq[m], res.Stamps[m]) {
					t.Fatalf("message %d: flight stamp %v, sequential stamp %v", m, res.Stamps[m], seq[m])
				}
			}
		})
	}
}
