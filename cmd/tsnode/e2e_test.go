package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestE2EThreeOSProcesses is the full-stack integration test: it builds the
// tsnode binary and launches three real OS processes that form a TCP mesh
// over localhost, run a client–server computation with a triangle edge
// between the servers, report logs to node 0, and verify the reconstructed
// stamps against the sequential replay and the message poset.
//
// Skipped under -short: it compiles a binary and opens real sockets.
func TestE2EThreeOSProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping OS-process integration test in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}

	bin := filepath.Join(t.TempDir(), "tsnode")
	build := exec.Command(goTool, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tsnode: %v\n%s", err, out)
	}

	addrs := freeAddrs(t, 3)
	// Topology: 2 servers (0,1) x 4 clients (2..5), plus the 0-1 edge —
	// so servers 0, 1 and any client close a triangle.
	program := strings.Join([]string{
		"0: recvfrom 2, recvfrom 3, send 1, recvfrom 4, internal server0 drained",
		"1: recvfrom 2, recvfrom 3, recvfrom 0, recvfrom 5",
		"2: send 0, send 1",
		"3: send 0, send 1",
		"4: send 0",
		"5: send 1",
	}, "; ")
	common := []string{
		"-addrs", strings.Join(addrs, ","),
		"-topology", "clientserver:2x4",
		"-extra-edges", "0-1",
		"-placement", "0,1,2,0,1,2",
		"-program", program,
		"-handshake-timeout", "20s",
		"-rendezvous-timeout", "20s",
	}

	type procResult struct {
		out, errOut bytes.Buffer
		err         error
	}
	results := make([]procResult, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		args := append([]string{"-node", []string{"0", "1", "2"}[i]}, common...)
		if i == 0 {
			args = append(args, "-collect", "-verify", "-collect-timeout", "30s")
		}
		cmd := exec.Command(bin, args...)
		cmd.Stdout = &results[i].out
		cmd.Stderr = &results[i].errOut
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting node %d: %v", i, err)
		}
		wg.Add(1)
		go func(i int, cmd *exec.Cmd) {
			defer wg.Done()
			done := make(chan error, 1)
			go func() { done <- cmd.Wait() }()
			select {
			case results[i].err = <-done:
			case <-time.After(90 * time.Second):
				_ = cmd.Process.Kill()
				results[i].err = <-done
			}
		}(i, cmd)
	}
	wg.Wait()

	for i := range results {
		if results[i].err != nil {
			t.Errorf("node %d exited with %v\nstdout:\n%s\nstderr:\n%s",
				i, results[i].err, results[i].out.String(), results[i].errOut.String())
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	got := results[0].out.String()
	if !strings.Contains(got, "reconstructed computation: 7 messages, 1 internal events") {
		t.Fatalf("collector did not reconstruct the expected computation:\n%s", got)
	}
	if !strings.Contains(got, "verified: distributed stamps match the sequential replay") {
		t.Fatalf("collector did not verify the run:\n%s", got)
	}
	for i := 1; i < 3; i++ {
		if !strings.Contains(results[i].out.String(), "logs reported to node 0") {
			t.Fatalf("node %d did not report its logs:\n%s", i, results[i].out.String())
		}
	}
}
