package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// e2eProgram is the fixed computation the OS-process tests run: 2 servers
// (0,1) x 4 clients (2..5), plus the 0-1 edge — so servers 0, 1 and any
// client close a triangle. 7 messages, 1 internal event.
var e2eProgram = strings.Join([]string{
	"0: recvfrom 2, recvfrom 3, send 1, recvfrom 4, internal server0 drained",
	"1: recvfrom 2, recvfrom 3, recvfrom 0, recvfrom 5",
	"2: send 0, send 1",
	"3: send 0, send 1",
	"4: send 0",
	"5: send 1",
}, "; ")

// buildBinary compiles one of this repo's commands into dir.
func buildBinary(t *testing.T, goTool, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	build := exec.Command(goTool, "build", "-o", bin, pkg)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// runE2EMesh launches the three-node mesh as real OS processes with
// observability enabled and returns the per-node JSONL trace files. With
// poll set, nodes 0 and 1 are started first and their /metrics and /healthz
// endpoints are exercised over HTTP while they sit in the handshake waiting
// for node 2 — proving the obs server is live during the run, not just
// after it.
func runE2EMesh(t *testing.T, bin string, poll bool) []string {
	t.Helper()
	addrs := freeAddrs(t, 3)
	obsAddrs := freeAddrs(t, 3)
	dir := t.TempDir()
	traces := make([]string, 3)
	for i := range traces {
		traces[i] = filepath.Join(dir, fmt.Sprintf("node%d.jsonl", i))
	}
	common := []string{
		"-addrs", strings.Join(addrs, ","),
		"-topology", "clientserver:2x4",
		"-extra-edges", "0-1",
		"-placement", "0,1,2,0,1,2",
		"-program", e2eProgram,
		"-handshake-timeout", "20s",
		"-rendezvous-timeout", "20s",
	}

	type procResult struct {
		out, errOut bytes.Buffer
		err         error
	}
	results := make([]procResult, 3)
	var wg sync.WaitGroup
	start := func(i int) {
		t.Helper()
		args := []string{
			"-node", fmt.Sprint(i),
			"-obs-addr", obsAddrs[i],
			"-obs-trace", traces[i],
		}
		args = append(args, common...)
		if i == 0 {
			args = append(args, "-collect", "-verify", "-collect-timeout", "30s")
		}
		cmd := exec.Command(bin, args...)
		cmd.Stdout = &results[i].out
		cmd.Stderr = &results[i].errOut
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting node %d: %v", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			done := make(chan error, 1)
			go func() { done <- cmd.Wait() }()
			select {
			case results[i].err = <-done:
			case <-time.After(90 * time.Second):
				_ = cmd.Process.Kill()
				results[i].err = <-done
			}
		}()
	}

	start(0)
	start(1)
	if poll {
		// Nodes 0 and 1 are blocked in the handshake until node 2 arrives;
		// their obs endpoints must already be serving.
		for node := 0; node < 2; node++ {
			pollEndpoint(t, "http://"+obsAddrs[node]+"/healthz", "ok")
			pollEndpoint(t, "http://"+obsAddrs[node]+"/metrics", `"counters"`)
		}
	}
	start(2)
	wg.Wait()

	for i := range results {
		if results[i].err != nil {
			t.Errorf("node %d exited with %v\nstdout:\n%s\nstderr:\n%s",
				i, results[i].err, results[i].out.String(), results[i].errOut.String())
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	got := results[0].out.String()
	if !strings.Contains(got, "reconstructed computation: 7 messages, 1 internal events") {
		t.Fatalf("collector did not reconstruct the expected computation:\n%s", got)
	}
	if !strings.Contains(got, "verified: distributed stamps match the sequential replay") {
		t.Fatalf("collector did not verify the run:\n%s", got)
	}
	for i := 1; i < 3; i++ {
		if !strings.Contains(results[i].out.String(), "logs reported to node 0") {
			t.Fatalf("node %d did not report its logs:\n%s", i, results[i].out.String())
		}
	}
	for i := range results {
		if !strings.Contains(results[i].out.String(), "trace written to "+traces[i]) {
			t.Fatalf("node %d did not write its trace:\n%s", i, results[i].out.String())
		}
	}
	return traces
}

// pollEndpoint GETs the URL with retries until the body contains want.
func pollEndpoint(t *testing.T, url, want string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK && strings.Contains(string(body), want) {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s: still not serving %q (last err %v)", url, want, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestE2EThreeOSProcesses is the full-stack integration test: it builds the
// tsnode and tsanalyze binaries, launches three real OS processes forming a
// TCP mesh over localhost, exercises the live observability endpoints while
// the mesh is forming, verifies the reconstructed stamps, checks that a
// second run exports byte-identical JSONL traces, and feeds the traces
// through "tsanalyze trace-report" for the independent span-ordering oracle.
//
// Skipped under -short: it compiles binaries and opens real sockets.
func TestE2EThreeOSProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping OS-process integration test in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}
	binDir := t.TempDir()
	tsnode := buildBinary(t, goTool, binDir, "syncstamp/cmd/tsnode")
	tsanalyze := buildBinary(t, goTool, binDir, "syncstamp/cmd/tsanalyze")

	traces := runE2EMesh(t, tsnode, true)
	again := runE2EMesh(t, tsnode, false)
	for i := range traces {
		a, err := os.ReadFile(traces[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(again[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 {
			t.Fatalf("node %d exported an empty trace", i)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("node %d JSONL differs across two runs:\n%s\n---\n%s", i, a, b)
		}
	}

	chrome := filepath.Join(t.TempDir(), "run.chrome.json")
	args := append([]string{"trace-report", "-chrome", chrome}, traces...)
	out, err := exec.Command(tsanalyze, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("tsanalyze trace-report: %v\n%s", err, out)
	}
	report := string(out)
	if !strings.Contains(report, "7 messages, 1 internal events") {
		t.Fatalf("trace-report missed the computation:\n%s", report)
	}
	if !strings.Contains(report, "verified: span stamps match the sequential replay") {
		t.Fatalf("trace-report did not verify the spans:\n%s", report)
	}
	if !strings.Contains(report, "wire traffic by frame kind:") {
		t.Fatalf("trace-report printed no wire table:\n%s", report)
	}
	if fi, err := os.Stat(chrome); err != nil || fi.Size() == 0 {
		t.Fatalf("chrome trace missing or empty: %v", err)
	}

	// The causal critical-path profile is a pure function of the computation:
	// profiling the two independent runs' traces must produce byte-identical
	// reports, whose end-to-end length dominates every per-process span.
	profile := func(traceFiles []string) string {
		t.Helper()
		out, err := exec.Command(tsanalyze, append([]string{"critical-path"}, traceFiles...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("tsanalyze critical-path: %v\n%s", err, out)
		}
		return string(out)
	}
	crit := profile(traces)
	if crit2 := profile(again); crit != crit2 {
		t.Errorf("critical-path report differs across two runs:\n%s\n---\n%s", crit, crit2)
	}
	var length, steps int
	if _, err := fmt.Sscanf(crit, "critical-path: 3 file(s), nodes [0 1 2], N=6 processes, d=%d\ncritical path: %d causal ticks end-to-end over %d steps",
		new(int), &length, &steps); err != nil {
		t.Fatalf("unparseable critical-path header (%v):\n%s", err, crit)
	}
	if length <= 0 || steps <= 0 {
		t.Fatalf("degenerate critical path (%d ticks, %d steps):\n%s", length, steps, crit)
	}
	procs := 0
	for _, line := range strings.Split(crit, "\n") {
		var proc, endSum, slack int
		if _, err := fmt.Sscanf(line, "  P%d %d %d", &proc, &endSum, &slack); err != nil {
			continue
		}
		procs++
		if endSum > length {
			t.Errorf("P%d causal-tick span %d exceeds the end-to-end length %d", proc, endSum, length)
		}
		if slack != length-endSum {
			t.Errorf("P%d slack %d, want %d", proc, slack, length-endSum)
		}
	}
	if procs != 6 {
		t.Fatalf("slack table lists %d processes, want 6:\n%s", procs, crit)
	}
	if !strings.Contains(crit, "rendezvous-link blame (ranked by critical-path ticks):") {
		t.Fatalf("critical-path printed no blame table:\n%s", crit)
	}
}
