// Command tsnode runs one node of a distributed timestamped computation:
// it hosts the processes placed on it, speaks the internal/wire rendezvous
// protocol with its peer nodes over TCP, and — on the collector node —
// gathers every node's rendezvous logs, reconstructs the global
// computation, and verifies the stamps against a sequential replay and the
// ground-truth message poset.
//
// Usage (a 2-process ping over two nodes):
//
//	tsnode -node 0 -addrs 127.0.0.1:7000,127.0.0.1:7001 -topology path:2 \
//	       -placement 0,1 -program '0: send 1; 1: recvfrom 0' -collect -verify &
//	tsnode -node 1 -addrs 127.0.0.1:7000,127.0.0.1:7001 -topology path:2 \
//	       -placement 0,1 -program '0: send 1; 1: recvfrom 0'
//
// Every node of a run must be given identical -topology, -extra-edges,
// -decomp, and -placement values; the HELLO handshake digest rejects
// mismatches. The program script assigns each process its operations:
// processes are separated by ';', operations by ',', and each operation is
// one of "send Q", "recv", "recvfrom Q", or "internal NOTE".
//
// Observability: -obs-addr serves /metrics (JSON), /healthz, /debug/flight,
// and net/http/pprof for the duration of the run; -obs-trace writes the
// node's structured JSONL event trace after the run, ready for "tsanalyze
// trace-report" and "tsanalyze critical-path". The flight recorder (-flight,
// on by default) keeps a bounded ring of recent events and dumps it to
// -flight-dump on failure, peer loss, SIGQUIT, and end of run — the causal
// post-mortem for runs that died too hard to write a trace. On the collector
// node, /metrics serves the cluster rollup after a collect: every reporting
// node's registry (and every collector-tree leaf's shard registry) merged
// into one view.
//
// Chaos and recovery: -fault-plan wraps the transport with the deterministic
// internal/fault injector (same plan + seed → same faults); -journal names a
// crash-recovery journal so a killed node, restarted with identical flags,
// replays its committed operations and resumes the run; -on-peer-loss picks
// what survivors do about a peer that stays gone (abort, wait, exclude). Any
// of these flags enables the loss-tolerant protocol (retransmission, dedup,
// session-resuming reconnects).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"syncstamp/internal/check"
	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/fault"
	"syncstamp/internal/graph"
	"syncstamp/internal/node"
	"syncstamp/internal/obs"
	tssync "syncstamp/internal/sync"
	"syncstamp/internal/topospec"
	"syncstamp/internal/vector"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsnode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nodeIdx := fs.Int("node", -1, "this node's index into -addrs")
	addrsFlag := fs.String("addrs", "", "comma-separated listen addresses, one per node")
	topoFlag := fs.String("topology", "", "communication topology ("+`see "tsgen -help" for specs`+")")
	extraEdges := fs.String("extra-edges", "", "additional channels as A-B pairs, comma-separated (e.g. 0-1,2-3)")
	decompFile := fs.String("decomp", "", "edge decomposition file (default: Figure 7 on the topology)")
	placementFlag := fs.String("placement", "", "comma-separated node index per process")
	programFlag := fs.String("program", "", "per-process scripts: '0: send 1, internal x; 1: recvfrom 0'")
	collect := fs.Bool("collect", false, "collect all nodes' logs and reconstruct the global computation")
	collector := fs.Int("collector", 0, "node that collects (all nodes must agree)")
	verify := fs.Bool("verify", false, "with -collect: check stamps against the sequential replay and the message poset")
	handshake := fs.Duration("handshake-timeout", 10*time.Second, "connection + HELLO deadline")
	rendezvous := fs.Duration("rendezvous-timeout", 10*time.Second, "per-send ACK deadline")
	collectWait := fs.Duration("collect-timeout", 30*time.Second, "with -collect: deadline for all reports")
	obsAddr := fs.String("obs-addr", "", "serve /metrics, /healthz, and pprof on this address (e.g. 127.0.0.1:0)")
	obsTrace := fs.String("obs-trace", "", "write this node's JSONL trace here after the run")
	faultPlanFlag := fs.String("fault-plan", "", "JSON fault-injection plan; wraps the transport with the deterministic internal/fault injector (implies recovery)")
	journalFlag := fs.String("journal", "", "crash-recovery journal file; a restarted node replays it and resumes the session (implies recovery)")
	onPeerLoss := fs.String("on-peer-loss", "abort", "policy for a peer unreachable past -reconnect-window: abort, wait, or exclude")
	reconnectWindow := fs.Duration("reconnect-window", 10*time.Second, "how long a lost peer may stay unreachable before -on-peer-loss applies")
	retransmitMin := fs.Duration("retransmit-min", node.DefaultRetransmitMin, "initial SYN retransmission backoff")
	retransmitMax := fs.Duration("retransmit-max", node.DefaultRetransmitMax, "retransmission backoff cap")
	asyncFlag := fs.Bool("async", false, "asynchronous-substrate mode: adaptive per-peer RTO, safe-counter piggyback on SYN/ACK, suspicion-driven peer health (implies recovery)")
	rttInit := fs.Duration("rtt-init", tssync.DefaultRTTInit, "with -async: initial RTT guess seeding each peer's estimator")
	jitterProfile := fs.String("jitter-profile", "", `inject link latency jitter: "fixed|lognormal|pareto[:meanMs[:shape]]" (implies the fault injector and recovery)`)
	noCoalesce := fs.Bool("no-coalesce", false, "flush every frame to the transport individually instead of coalescing bursts")
	journalSync := fs.String("journal-sync", "group", "journal commit mode: group (one fsync per batch) or each (one fsync per record)")
	flight := fs.Int("flight", 4096, "flight recorder capacity in events (0 disables the ring)")
	flightDump := fs.String("flight-dump", "", "dump the flight recorder here (JSONL) on failure, peer loss, SIGQUIT, and end of run")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "tsnode:", err)
		return 1
	}

	policy, err := node.ParsePeerLossPolicy(*onPeerLoss)
	if err != nil {
		return fail(err)
	}

	addrs := strings.Split(*addrsFlag, ",")
	if *addrsFlag == "" || len(addrs) < 2 {
		return fail(fmt.Errorf("-addrs needs at least two comma-separated addresses"))
	}
	if *nodeIdx < 0 || *nodeIdx >= len(addrs) {
		return fail(fmt.Errorf("-node %d out of range for %d addresses", *nodeIdx, len(addrs)))
	}
	if *topoFlag == "" {
		return fail(fmt.Errorf("-topology is required"))
	}
	g, err := topospec.Parse(*topoFlag)
	if err != nil {
		return fail(err)
	}
	if err := addExtraEdges(g, *extraEdges); err != nil {
		return fail(err)
	}
	var dec *decomp.Decomposition
	if *decompFile != "" {
		f, err := os.Open(*decompFile)
		if err != nil {
			return fail(err)
		}
		dec, err = decomp.ReadText(f)
		_ = f.Close() // read-only file
		if err != nil {
			return fail(err)
		}
	} else {
		dec = decomp.Best(g)
	}
	if err := dec.Validate(g); err != nil {
		return fail(err)
	}
	placement, err := parsePlacement(*placementFlag, g.N(), len(addrs))
	if err != nil {
		return fail(err)
	}
	programs, err := parseProgram(*programFlag, g.N())
	if err != nil {
		return fail(err)
	}

	tcp, err := node.NewTCPTransport(addrs[*nodeIdx])
	if err != nil {
		return fail(err)
	}
	tcp.SetPeers(addrs)

	var o *obs.Obs
	if *obsAddr != "" || *obsTrace != "" {
		o = obs.New()
		tcp.Retries = o.Registry().Counter(obs.MetricDialRetries)
	}

	// Chaos mode: wrap the transport with the deterministic fault injector.
	// A scheduled crash exits hard (the kill -9 idiom) so the journal, not a
	// clean shutdown path, is what the restarted incarnation recovers from.
	var tr node.Transport = tcp
	var ftr *fault.Transport
	var nd *node.Node // set below; the crash hook dumps its flight recorder
	var plan *fault.Plan
	if *faultPlanFlag != "" {
		plan, err = fault.ReadPlanFile(*faultPlanFlag)
		if err != nil {
			return fail(err)
		}
	}
	if *jitterProfile != "" {
		spec, err := fault.ParseJitterProfile(*jitterProfile)
		if err != nil {
			return fail(err)
		}
		if plan == nil {
			plan = &fault.Plan{}
		}
		plan.ApplyJitter(spec)
		if err := plan.Validate(); err != nil {
			return fail(err)
		}
	}
	if plan != nil {
		ftr = fault.New(tcp, plan, *nodeIdx)
		ftr.CrashFn = func() {
			fmt.Fprintf(stderr, "tsnode: node %d crashing on schedule\n", *nodeIdx)
			if nd != nil && nd.DumpFlight() {
				fmt.Fprintf(stderr, "tsnode: flight dump written to %s\n", *flightDump)
			}
			os.Exit(137)
		}
		tr = ftr
	}

	// Any chaos/recovery flag turns on the loss-tolerant protocol; the plain
	// invocation keeps the original fail-stop semantics.
	var rec *node.RecoveryConfig
	if *journalFlag != "" || plan != nil || policy != node.PeerLossAbort || *asyncFlag {
		rec = &node.RecoveryConfig{
			OnPeerLoss:      policy,
			RetransmitMin:   *retransmitMin,
			RetransmitMax:   *retransmitMax,
			ReconnectWindow: *reconnectWindow,
		}
		if *asyncFlag {
			rec.Async = &tssync.Config{RTTInit: *rttInit}
		}
	}
	var journalRecs []node.JournalRecord
	if *journalFlag != "" {
		j, recs, err := node.OpenJournal(*journalFlag)
		if err != nil {
			return fail(err)
		}
		switch *journalSync {
		case "group":
			// Default: group commit, one fsync covers a batch of records.
		case "each":
			j.SetSyncEach(true)
		default:
			_ = j.Close()
			return fail(fmt.Errorf("-journal-sync %q: want group or each", *journalSync))
		}
		defer func() {
			_ = j.Close() // every Append returned durable; nothing to flush
		}()
		rec.Journal = j
		journalRecs = recs
	}
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, o)
		if err != nil {
			return fail(err)
		}
		defer func() {
			_ = srv.Close() // best-effort teardown on exit
		}()
		fmt.Fprintf(stdout, "tsnode: observability on http://%s\n", srv.Addr())
	}

	n, err := node.New(node.Config{
		Node:              *nodeIdx,
		Placement:         placement,
		Dec:               dec,
		HandshakeTimeout:  *handshake,
		RendezvousTimeout: *rendezvous,
		Obs:               o,
		NoCoalesce:        *noCoalesce,
		Recovery:          rec,
		FlightRecorder:    *flight,
		FlightDump:        *flightDump,
	}, tr)
	if err != nil {
		return fail(err)
	}
	defer n.Close()
	nd = n

	// SIGQUIT takes a flight dump on demand — the classic "what is this
	// stuck process doing" probe — without killing the run. Only installed
	// when there is somewhere to dump to; otherwise SIGQUIT keeps its
	// default goroutine-dump-and-exit behavior.
	if *flight > 0 && *flightDump != "" {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGQUIT)
		defer signal.Stop(sigc)
		go func() {
			for range sigc {
				if n.DumpFlight() {
					fmt.Fprintf(stderr, "tsnode: flight dump written to %s\n", *flightDump)
				}
			}
		}()
	}

	var resume map[int]int
	if rec != nil && rec.Journal != nil {
		resume, err = n.Restore(journalRecs)
		if err != nil {
			return fail(err)
		}
		if restarts := rec.Journal.Restarts(); restarts > 0 {
			fmt.Fprintf(stdout, "tsnode: restart #%d — resumed %d committed operations from the journal\n",
				restarts, len(journalRecs))
		}
	}

	info, err := n.Run(buildPrograms(programs, resume))
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "tsnode: node %d hosting %v — run complete\n", *nodeIdx, n.Local())
	printOverhead(stdout, info.Overhead)
	if info.Dropped > 0 {
		fmt.Fprintf(stdout, "tsnode: dropped %d unexpected frames\n", info.Dropped)
	}
	if info.Retransmits+info.Reconnects+info.Deduped > 0 {
		fmt.Fprintf(stdout, "tsnode: recovery: %d retransmits, %d reconnects, %d duplicates suppressed\n",
			info.Retransmits, info.Reconnects, info.Deduped)
	}
	if len(info.Excluded) > 0 {
		fmt.Fprintf(stdout, "tsnode: peers excluded from the run: %v\n", info.Excluded)
	}
	if rec != nil && rec.Async != nil {
		fmt.Fprintf(stdout, "tsnode: async: %d spurious retransmits, %d suspicions\n",
			info.Spurious, info.Suspicions)
		for j := 0; j < len(addrs); j++ {
			st, ok := info.PeerRTT[j]
			if !ok {
				continue
			}
			fmt.Fprintf(stdout, "tsnode: async: peer %d %s — srtt %v, rto %v, p50 %v, p99 %v over %d samples\n",
				j, info.PeerHealth[j], time.Duration(st.SRTTNS), time.Duration(st.RTONS),
				time.Duration(st.P50NS), time.Duration(st.P99NS), st.Samples)
		}
	}
	if info.JournalAppends > 0 {
		fmt.Fprintf(stdout, "tsnode: journal: %d records committed in %d fsync batches\n",
			info.JournalAppends, info.JournalSyncs)
	}
	if ftr != nil {
		st := ftr.Stats()
		fmt.Fprintf(stdout, "tsnode: faults injected: %d dropped, %d duplicated, %d reordered, %d delayed, %d resets\n",
			st.Dropped, st.Duplicated, st.Reordered, st.Delayed, st.Resets)
	}
	if *obsTrace != "" {
		if err := writeTrace(*obsTrace, *nodeIdx, dec, o, info); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "tsnode: trace written to %s\n", *obsTrace)
	}

	if !*collect {
		if err := n.SendReport(*collector, info); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "tsnode: logs reported to node %d\n", *collector)
		return 0
	}

	res, err := n.Collect(info, *collectWait)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "reconstructed computation: %d messages, %d internal events\n",
		res.Trace.NumMessages(), len(res.Internal))
	msgs := res.Trace.Messages()
	for m, op := range msgs {
		fmt.Fprintf(stdout, "  m%-3d %d->%d  %v\n", m, op.From, op.To, res.Stamps[m])
	}
	if *verify {
		if err := verifyRun(res, dec); err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, "verified: distributed stamps match the sequential replay and characterize the message order exactly")
	}
	return 0
}

// writeTrace exports the node's structured event trace as deterministic
// JSONL, with the node's wire accounting in the meta header. Feed the files
// from every node to "tsanalyze trace-report" to verify and summarize the
// run.
func writeTrace(path string, nodeIdx int, dec *decomp.Decomposition, o *obs.Obs, info *node.RunInfo) error {
	meta, err := obs.NewMeta(nodeIdx, dec)
	if err != nil {
		return err
	}
	meta.Frames = node.FrameMap(info.Frames)
	meta.Overhead = &info.Overhead
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteJSONL(f, meta, o.Tracer.Events()); err != nil {
		_ = f.Close() // the write error is the one to report
		return err
	}
	return f.Close()
}

// verifyRun checks the distributed run against its two oracles: the
// sequential Figure 5 replay (byte-identical stamps) and the ground-truth
// message poset (Theorem 4 comparability, via order.MessagePoset).
func verifyRun(res *csp.Result, dec *decomp.Decomposition) error {
	seq, err := core.StampTrace(res.Trace, dec)
	if err != nil {
		return err
	}
	if len(seq) != len(res.Stamps) {
		return fmt.Errorf("run produced %d stamps, sequential replay %d", len(res.Stamps), len(seq))
	}
	for m := range seq {
		if !vector.Eq(seq[m], res.Stamps[m]) {
			return fmt.Errorf("message %d: distributed stamp %v, sequential stamp %v", m, res.Stamps[m], seq[m])
		}
	}
	return check.ExactMatch(res.Trace, func(m1, m2 int) bool {
		return vector.Less(res.Stamps[m1], res.Stamps[m2])
	})
}

// addExtraEdges adds "A-B" channels to a parsed topology.
func addExtraEdges(g *graph.Graph, spec string) error {
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		ab := strings.SplitN(strings.TrimSpace(part), "-", 2)
		if len(ab) != 2 {
			return fmt.Errorf("bad edge %q in -extra-edges (want A-B)", part)
		}
		a, err1 := strconv.Atoi(ab[0])
		b, err2 := strconv.Atoi(ab[1])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad edge %q in -extra-edges (want A-B)", part)
		}
		if a < 0 || a >= g.N() || b < 0 || b >= g.N() || a == b {
			return fmt.Errorf("edge %q out of range for %d processes", part, g.N())
		}
		if !g.HasEdge(a, b) {
			g.AddEdge(a, b)
		}
	}
	return nil
}

// parsePlacement parses the per-process node assignment.
func parsePlacement(spec string, procs, nodes int) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-placement is required")
	}
	parts := strings.Split(spec, ",")
	if len(parts) != procs {
		return nil, fmt.Errorf("-placement names %d processes, topology has %d", len(parts), procs)
	}
	placement := make([]int, procs)
	seen := make([]bool, nodes)
	for i, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 || v >= nodes {
			return nil, fmt.Errorf("bad -placement entry %q for %d nodes", part, nodes)
		}
		placement[i] = v
		seen[v] = true
	}
	for nd, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("-placement leaves node %d without processes", nd)
		}
	}
	return placement, nil
}

// progOp is one parsed script operation.
type progOp struct {
	kind string // "send" | "recv" | "recvfrom" | "internal"
	arg  int
	note string
}

// parseProgram parses the per-process script: sections separated by ';',
// each "P: op, op, ...".
func parseProgram(spec string, procs int) (map[int][]progOp, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-program is required")
	}
	out := make(map[int][]progOp)
	for _, section := range strings.Split(spec, ";") {
		section = strings.TrimSpace(section)
		if section == "" {
			continue
		}
		head, body, found := strings.Cut(section, ":")
		if !found {
			return nil, fmt.Errorf("program section %q lacks a 'P:' prefix", section)
		}
		p, err := strconv.Atoi(strings.TrimSpace(head))
		if err != nil || p < 0 || p >= procs {
			return nil, fmt.Errorf("bad process %q in program (topology has %d)", head, procs)
		}
		if _, dup := out[p]; dup {
			return nil, fmt.Errorf("process %d scripted twice", p)
		}
		var ops []progOp
		for _, field := range strings.Split(body, ",") {
			words := strings.Fields(field)
			if len(words) == 0 {
				continue
			}
			op := progOp{kind: strings.ToLower(words[0])}
			switch op.kind {
			case "send", "recvfrom":
				if len(words) != 2 {
					return nil, fmt.Errorf("%q needs exactly one peer argument", field)
				}
				q, err := strconv.Atoi(words[1])
				if err != nil || q < 0 || q >= procs {
					return nil, fmt.Errorf("bad peer %q in %q", words[1], field)
				}
				op.arg = q
			case "recv":
				if len(words) != 1 {
					return nil, fmt.Errorf("%q takes no argument", field)
				}
			case "internal":
				if len(words) < 2 {
					return nil, fmt.Errorf("%q needs a note", field)
				}
				op.note = strings.Join(words[1:], " ")
			default:
				return nil, fmt.Errorf("unknown operation %q (want send/recv/recvfrom/internal)", words[0])
			}
			ops = append(ops, op)
		}
		if len(ops) == 0 {
			return nil, fmt.Errorf("process %d's script is empty", p)
		}
		out[p] = ops
	}
	return out, nil
}

// buildPrograms turns parsed scripts into runnable programs. resume (from a
// journal Restore) names how many leading operations each process already
// committed before the crash; those are skipped, and the journal-rebuilt
// clock carries their effect.
func buildPrograms(scripts map[int][]progOp, resume map[int]int) map[int]func(*node.Process) error {
	programs := make(map[int]func(*node.Process) error, len(scripts))
	for p, ops := range scripts {
		ops := ops
		if done := resume[p]; done > 0 {
			if done > len(ops) {
				done = len(ops)
			}
			ops = ops[done:]
		}
		programs[p] = func(proc *node.Process) error {
			for _, op := range ops {
				var err error
				switch op.kind {
				case "send":
					_, err = proc.Send(op.arg)
				case "recv":
					_, err = proc.Recv()
				case "recvfrom":
					_, err = proc.RecvFrom(op.arg)
				case "internal":
					proc.Internal(op.note)
				}
				if err != nil {
					return err
				}
			}
			return nil
		}
	}
	return programs
}

// printOverhead renders the node's wire-piggyback account.
func printOverhead(w io.Writer, o core.Overhead) {
	if o.Frames == 0 {
		fmt.Fprintln(w, "wire overhead: no remote rendezvous")
		return
	}
	fmt.Fprintf(w, "wire overhead: %d vector frames, %d bytes on the wire vs %d dense (%.0f%% saved)\n",
		o.Frames, o.WireBytes, o.DenseBytes, 100*o.Savings())
}
