package main

import (
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("tslint -list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{"vectoralias", "ordercmp", "mapiter", "lockcheck", "droppederr"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown analyzer: got exit %d, want 2 (stderr: %s)", code, errOut.String())
	}
}

func TestMissingDirectory(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"no/such/dir"}, &out, &errOut); code != 2 {
		t.Fatalf("missing directory: got exit %d, want 2", code)
	}
}

// TestSeededViolationsFail points the driver at a seeded-violation testdata
// package and requires a non-zero exit — the linter must bite.
func TestSeededViolationsFail(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"../../internal/lint/testdata/src/vectoralias/bad"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("seeded violations: got exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "vectoralias:") {
		t.Fatalf("expected vectoralias findings, got:\n%s", out.String())
	}
}

// TestModuleIsClean is the repo's own gate: tslint over the whole module
// must be finding-free (every violation fixed or suppressed with a
// justification).
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module analysis skipped in -short mode")
	}
	var out, errOut strings.Builder
	code := run(nil, &out, &errOut)
	if code != 0 {
		t.Fatalf("tslint found issues (exit %d):\n%s%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("expected no diagnostics, got:\n%s", out.String())
	}
}
