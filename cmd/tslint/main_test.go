package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("tslint -list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{"vectoralias", "ordercmp", "mapiter", "lockcheck", "droppederr"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown analyzer: got exit %d, want 2 (stderr: %s)", code, errOut.String())
	}
}

func TestMissingDirectory(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"no/such/dir"}, &out, &errOut); code != 2 {
		t.Fatalf("missing directory: got exit %d, want 2", code)
	}
}

// TestSeededViolationsFail points the driver at a seeded-violation testdata
// package and requires a non-zero exit — the linter must bite.
func TestSeededViolationsFail(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"../../internal/lint/testdata/src/vectoralias/bad"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("seeded violations: got exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "vectoralias:") {
		t.Fatalf("expected vectoralias findings, got:\n%s", out.String())
	}
}

// TestOnlyFlag exercises -only as the documented alias of -run, including
// the conflicting-flags rejection.
func TestOnlyFlag(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-only", "vectoralias", "../../internal/lint/testdata/src/vectoralias/bad"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("-only vectoralias on seeded package: got exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "vectoralias:") {
		t.Fatalf("expected vectoralias findings, got:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	// A different analyzer selected: the same seeded package is clean for it.
	code = run([]string{"-only", "droppederr", "../../internal/lint/testdata/src/vectoralias/bad"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("-only droppederr: got exit %d, want 0 (out: %s)", code, out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-only", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("-only with unknown analyzer: got exit %d, want 2", code)
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-run", "mapiter", "-only", "droppederr"}, &out, &errOut); code != 2 {
		t.Fatalf("conflicting -run and -only: got exit %d, want 2", code)
	}
}

// TestSARIFOutput checks the -sarif file is valid SARIF 2.1.0 with one
// result per printed diagnostic and rule metadata for the analyzers run.
func TestSARIFOutput(t *testing.T) {
	sarifPath := filepath.Join(t.TempDir(), "out.sarif")
	var out, errOut strings.Builder
	code := run([]string{"-only", "vectoralias", "-sarif", sarifPath,
		"../../internal/lint/testdata/src/vectoralias/bad"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("seeded run: got exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatalf("reading SARIF: %v", err)
	}
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("SARIF version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "tslint" {
		t.Errorf("driver name = %q, want tslint", r.Tool.Driver.Name)
	}
	if len(r.Tool.Driver.Rules) != 1 || r.Tool.Driver.Rules[0].ID != "vectoralias" {
		t.Errorf("rules = %+v, want the single vectoralias rule", r.Tool.Driver.Rules)
	}
	printed := strings.Count(strings.TrimSpace(out.String()), "\n") + 1
	if len(r.Results) != printed {
		t.Errorf("SARIF has %d results, stdout printed %d diagnostics", len(r.Results), printed)
	}
	for _, res := range r.Results {
		if res.RuleID != "vectoralias" || len(res.Locations) != 1 {
			t.Errorf("malformed result: %+v", res)
		}
		if strings.Contains(res.Locations[0].PhysicalLocation.ArtifactLocation.URI, "\\") {
			t.Errorf("artifact URI not forward-slashed: %q", res.Locations[0].PhysicalLocation.ArtifactLocation.URI)
		}
	}
}

// TestBaseline checks the write/read cycle: baselining the current findings
// turns the run green, and a finding not in the baseline still fails.
func TestBaseline(t *testing.T) {
	basePath := filepath.Join(t.TempDir(), "lint.baseline")
	target := "../../internal/lint/testdata/src/vectoralias/bad"

	var out, errOut strings.Builder
	if code := run([]string{"-only", "vectoralias", "-write-baseline", basePath, target}, &out, &errOut); code != 0 {
		t.Fatalf("-write-baseline: got exit %d, want 0 (stderr: %s)", code, errOut.String())
	}

	// Everything baselined: clean.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-only", "vectoralias", "-baseline", basePath, target}, &out, &errOut); code != 0 {
		t.Fatalf("fully baselined run: got exit %d, want 0\nstdout:\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "baselined finding(s) suppressed") {
		t.Errorf("expected suppression note on stderr, got: %s", errOut.String())
	}

	// Truncate the baseline to its comment header: the same findings are new
	// again and must fail.
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	var header []string
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "#") {
			header = append(header, line)
		}
	}
	if err := os.WriteFile(basePath, []byte(strings.Join(header, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-only", "vectoralias", "-baseline", basePath, target}, &out, &errOut); code != 1 {
		t.Fatalf("empty baseline: got exit %d, want 1", code)
	}

	// A missing baseline file is a usage error, not a silent pass.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", filepath.Join(t.TempDir(), "nope"), target}, &out, &errOut); code != 2 {
		t.Fatalf("missing baseline file: got exit %d, want 2", code)
	}
}

// TestModuleIsClean is the repo's own gate: tslint over the whole module
// must be finding-free (every violation fixed or suppressed with a
// justification).
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module analysis skipped in -short mode")
	}
	var out, errOut strings.Builder
	code := run(nil, &out, &errOut)
	if code != 0 {
		t.Fatalf("tslint found issues (exit %d):\n%s%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("expected no diagnostics, got:\n%s", out.String())
	}
}
