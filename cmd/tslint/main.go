// Command tslint runs this repository's codebase-specific static analyzers
// (internal/lint) over the module and fails on findings. It exists because
// Theorem 4's guarantee is only as strong as the code's discipline around
// vector timestamps: the analyzers machine-check aliasing, comparison,
// iteration-determinism, locking, and error-handling invariants that code
// review would otherwise have to re-verify at every call site.
//
// Usage:
//
//	tslint                  # analyze every package of the enclosing module
//	tslint ./...            # same
//	tslint <dir> [<dir>...] # analyze specific package directories
//	tslint -list            # list analyzers and the invariant each enforces
//	tslint -run mapiter,ordercmp ./...
//
// Diagnostics print as "file:line:col analyzer: message". A finding is
// suppressed by a trailing or preceding "//nolint:<analyzer> reason"
// comment; the reason is mandatory (an unjustified suppression is itself a
// finding). Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"syncstamp/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("C", ".", "directory inside the module to analyze")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	// Arguments are either the ./... pattern (whole module, the default) or
	// explicit package directories.
	var dirs []string
	for _, arg := range fs.Args() {
		if arg == "./..." || arg == "..." {
			dirs = nil
			break
		}
		dirs = append(dirs, arg)
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "tslint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "tslint:", err)
		return 2
	}
	var pkgs []*lint.Package
	if len(dirs) == 0 {
		pkgs, err = loader.LoadAll()
		if err != nil {
			fmt.Fprintln(stderr, "tslint:", err)
			return 2
		}
	} else {
		for _, d := range dirs {
			pkg, err := loader.LoadDir(d)
			if err != nil {
				fmt.Fprintln(stderr, "tslint:", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}
	diags := lint.Run(pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		fmt.Fprintln(stdout, d.Rel(cwd))
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "tslint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
