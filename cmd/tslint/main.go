// Command tslint runs this repository's codebase-specific static analyzers
// (internal/lint) over the module and fails on findings. It exists because
// Theorem 4's guarantee is only as strong as the code's discipline around
// vector timestamps: the analyzers machine-check aliasing, comparison,
// iteration-determinism, locking, and error-handling invariants that code
// review would otherwise have to re-verify at every call site.
//
// Usage:
//
//	tslint                  # analyze every package of the enclosing module
//	tslint ./...            # same
//	tslint <dir> [<dir>...] # analyze specific package directories
//	tslint -list            # list analyzers and the invariant each enforces
//	tslint -only mapiter,ordercmp ./...
//	tslint -sarif out.sarif ./...        # also write SARIF 2.1.0
//	tslint -baseline lint.baseline ./... # fail only on findings not baselined
//	tslint -write-baseline lint.baseline ./...
//
// Diagnostics print as "file:line:col analyzer: message". A finding is
// suppressed by a trailing or preceding "//nolint:<analyzer> reason"
// comment; the reason is mandatory (an unjustified suppression is itself a
// finding). Exit status: 0 clean, 1 findings, 2 usage or load failure. With
// -baseline, findings listed in the baseline file are reported as accepted
// and do not fail the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"syncstamp/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	onlyNames := fs.String("only", "", "alias of -run: restrict to the named analyzers")
	dir := fs.String("C", ".", "directory inside the module to analyze")
	sarifOut := fs.String("sarif", "", "also write diagnostics as SARIF 2.1.0 to this file")
	baselinePath := fs.String("baseline", "", "fail only on diagnostics not listed in this baseline file")
	writeBaselinePath := fs.String("write-baseline", "", "write current diagnostics to this baseline file and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	// Arguments are either the ./... pattern (whole module, the default) or
	// explicit package directories.
	var dirs []string
	for _, arg := range fs.Args() {
		if arg == "./..." || arg == "..." {
			dirs = nil
			break
		}
		dirs = append(dirs, arg)
	}

	selected := *runNames
	if *onlyNames != "" {
		if selected != "" && selected != *onlyNames {
			fmt.Fprintln(stderr, "tslint: -run and -only are aliases; pass one of them")
			return 2
		}
		selected = *onlyNames
	}
	analyzers := lint.All()
	if selected != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(selected, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "tslint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "tslint:", err)
		return 2
	}
	var pkgs []*lint.Package
	if len(dirs) == 0 {
		pkgs, err = loader.LoadAll()
		if err != nil {
			fmt.Fprintln(stderr, "tslint:", err)
			return 2
		}
	} else {
		for _, d := range dirs {
			pkg, err := loader.LoadDir(d)
			if err != nil {
				fmt.Fprintln(stderr, "tslint:", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}
	diags := lint.Run(pkgs, analyzers)
	root := loader.ModuleDir()

	if *sarifOut != "" {
		if err := writeSARIF(*sarifOut, root, analyzers, diags); err != nil {
			fmt.Fprintln(stderr, "tslint: writing SARIF:", err)
			return 2
		}
	}
	if *writeBaselinePath != "" {
		if err := writeBaseline(*writeBaselinePath, root, diags); err != nil {
			fmt.Fprintln(stderr, "tslint: writing baseline:", err)
			return 2
		}
		fmt.Fprintf(stderr, "tslint: wrote %d finding(s) to %s\n", len(diags), *writeBaselinePath)
		return 0
	}

	failing := diags
	if *baselinePath != "" {
		accepted, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "tslint: reading baseline:", err)
			return 2
		}
		var old []lint.Diagnostic
		failing, old = filterBaseline(diags, accepted, root)
		if len(old) > 0 {
			fmt.Fprintf(stderr, "tslint: %d baselined finding(s) suppressed\n", len(old))
		}
	}

	cwd, _ := os.Getwd()
	for _, d := range failing {
		fmt.Fprintln(stdout, d.Rel(cwd))
	}
	if len(failing) > 0 {
		fmt.Fprintf(stderr, "tslint: %d finding(s) in %d package(s)\n", len(failing), len(pkgs))
		return 1
	}
	return 0
}
