package main

import (
	"os"
	"strings"

	"syncstamp/internal/lint"
)

// The baseline is a checked-in list of accepted diagnostics, one canonical
// "file:line:col analyzer: message" line per finding, paths relative to the
// module root. With -baseline, only diagnostics NOT in the file fail the
// run: CI gates on new findings without forcing a big-bang cleanup when an
// analyzer tightens. Lines starting with '#' and blank lines are ignored, so
// the file can carry a header explaining itself. An empty baseline (the
// committed state of a clean module) makes -baseline equivalent to the
// default strict mode.

// loadBaseline reads the accepted-diagnostic set from path.
func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	accepted := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		accepted[line] = true
	}
	return accepted, nil
}

// filterBaseline splits diags into new findings and accepted ones, matching
// on the canonical line rendered relative to root.
func filterBaseline(diags []lint.Diagnostic, accepted map[string]bool, root string) (fresh, old []lint.Diagnostic) {
	for _, d := range diags {
		if accepted[d.Rel(root)] {
			old = append(old, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return fresh, old
}

// writeBaseline records the current diagnostics as the accepted set.
func writeBaseline(path, root string, diags []lint.Diagnostic) error {
	var b strings.Builder
	b.WriteString("# tslint baseline: accepted diagnostics, one per line, paths relative to\n")
	b.WriteString("# the module root. Regenerate with `make lint-baseline`. CI fails only on\n")
	b.WriteString("# findings not listed here.\n")
	for _, d := range diags {
		b.WriteString(d.Rel(root))
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
