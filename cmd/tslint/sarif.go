package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"

	"syncstamp/internal/lint"
)

// SARIF 2.1.0 output, minimal profile: one run, one rule per analyzer, one
// result per diagnostic. Enough for GitHub code scanning to annotate the
// diff; nothing tool-specific beyond that.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders diags as a SARIF log at path, with artifact URIs
// relative to root (the module directory), forward-slashed per the spec.
func writeSARIF(path, root string, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if r, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(r, "..") {
			uri = r
		}
		uri = filepath.ToSlash(uri)
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "tslint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
