// Command tsstamp timestamps the messages of a recorded synchronous
// computation using the paper's algorithms or the baselines, optionally
// verifying the result against the ground-truth order and rendering the
// time diagram.
//
// Usage:
//
//	tsgen -topology complete:5 -messages 8 | tsstamp -mode online
//	tsstamp -trace run.trace -mode offline -verify
//	tsstamp -trace run.trace -mode fm -diagram
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/offline"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
	"syncstamp/internal/vclock"
	"syncstamp/internal/vector"
	"syncstamp/internal/vis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsstamp", flag.ContinueOnError)
	traceFile := fs.String("trace", "", "trace file (default stdin)")
	mode := fs.String("mode", "online", "online | offline | fm | lamport | plausible")
	decompFile := fs.String("decomp", "", "edge decomposition file for -mode online (default: Figure 7 on the used topology)")
	plausibleR := fs.Int("r", 4, "entries for -mode plausible")
	verify := fs.Bool("verify", false, "check the stamps against the ground-truth order")
	diagram := fs.Bool("diagram", false, "render the computation as a time diagram")
	matrix := fs.Bool("matrix", false, "print the precedence matrix")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON instead of the text table")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var in io.Reader = stdin
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(stderr, "tsstamp:", err)
			return 1
		}
		defer func() {
			_ = f.Close() // read-only file
		}()
		in = f
	}
	tr, err := trace.ReadText(in)
	if err != nil {
		fmt.Fprintln(stderr, "tsstamp:", err)
		return 1
	}

	// In JSON mode the human-readable header lines go to stderr so stdout
	// stays machine-parseable.
	headerW := stdout
	if *jsonOut {
		headerW = stderr
	}
	var stamps []vector.V
	exact := true // does this mode characterize ↦ exactly?
	switch *mode {
	case "online":
		var dec *decomp.Decomposition
		if *decompFile != "" {
			f, err := os.Open(*decompFile)
			if err != nil {
				fmt.Fprintln(stderr, "tsstamp:", err)
				return 1
			}
			dec, err = decomp.ReadText(f)
			_ = f.Close() // read-only file
			if err != nil {
				fmt.Fprintln(stderr, "tsstamp:", err)
				return 1
			}
		} else {
			dec = decomp.Best(tr.Topology())
		}
		stamps, err = core.StampTrace(tr, dec)
		if err != nil {
			fmt.Fprintln(stderr, "tsstamp:", err)
			return 1
		}
		fmt.Fprintf(headerW, "mode=online d=%d (N=%d)\n", dec.D(), tr.N)
	case "offline":
		res, err := offline.Stamp(tr)
		if err != nil {
			fmt.Fprintln(stderr, "tsstamp:", err)
			return 1
		}
		stamps = res.Stamps
		fmt.Fprintf(headerW, "mode=offline width=%d (⌊N/2⌋=%d)\n", res.Width, tr.N/2)
	case "fm":
		stamps = vclock.FM{}.StampTrace(tr)
		fmt.Fprintf(headerW, "mode=fidge-mattern d=%d\n", tr.N)
	case "lamport":
		stamps = vclock.Lamport{}.StampTrace(tr)
		exact = false
		fmt.Fprintln(headerW, "mode=lamport d=1 (order-preserving only)")
	case "plausible":
		stamps = vclock.Plausible{R: *plausibleR}.StampTrace(tr)
		exact = false
		fmt.Fprintf(headerW, "mode=plausible d=%d (may order concurrent pairs)\n", *plausibleR)
	default:
		fmt.Fprintf(stderr, "tsstamp: unknown -mode %q\n", *mode)
		return 1
	}

	msgs := tr.Messages()
	if *jsonOut {
		type stamped struct {
			Index int   `json:"index"`
			From  int   `json:"from"`
			To    int   `json:"to"`
			Stamp []int `json:"stamp"`
		}
		out := make([]stamped, len(msgs))
		for i, m := range msgs {
			out[i] = stamped{Index: i, From: m.From, To: m.To, Stamp: stamps[i]}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "tsstamp:", err)
			return 1
		}
	} else {
		for i, m := range msgs {
			fmt.Fprintf(stdout, "m%-4d P%d->P%d  %s\n", i+1, m.From+1, m.To+1, stamps[i])
		}
	}

	if *diagram {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, vis.Render(tr, vis.Options{}))
	}
	if *matrix {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, vis.RenderMatrix(stamps))
	}
	if *verify {
		p := order.MessagePoset(tr)
		mismatches := 0
		for i := range stamps {
			for j := range stamps {
				if i == j {
					continue
				}
				got := vector.Less(stamps[i], stamps[j])
				want := p.Less(i, j)
				if exact && got != want {
					mismatches++
				}
				if !exact && want && !got {
					mismatches++ // order-preserving modes must not miss orders
				}
			}
		}
		if mismatches > 0 {
			fmt.Fprintf(stdout, "VERIFY: %d mismatches against ground truth\n", mismatches)
			return 1
		}
		fmt.Fprintln(stdout, "VERIFY: stamps consistent with ground-truth order")
	}
	return 0
}
