package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleTrace = "n 4\nm 0 1\nm 2 3\nm 1 2\nm 2 3\nm 3 0\nm 0 1\n"

func runTool(t *testing.T, stdin io.Reader, args ...string) (int, string, string) {
	t.Helper()
	if stdin == nil {
		stdin = strings.NewReader("")
	}
	var out, errOut bytes.Buffer
	code := run(args, stdin, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestOnlineFromStdinVerify(t *testing.T) {
	code, out, errOut := runTool(t, strings.NewReader(sampleTrace), "-mode", "online", "-verify")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"mode=online", "m1", "VERIFY: stamps consistent"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestAllModesVerify(t *testing.T) {
	for _, mode := range []string{"online", "offline", "fm", "lamport", "plausible"} {
		code, out, errOut := runTool(t, strings.NewReader(sampleTrace), "-mode", mode, "-verify")
		if code != 0 {
			t.Fatalf("mode %s: exit %d: %s\n%s", mode, code, errOut, out)
		}
		if !strings.Contains(out, "VERIFY: stamps consistent") {
			t.Fatalf("mode %s did not verify:\n%s", mode, out)
		}
	}
}

func TestDiagramAndMatrix(t *testing.T) {
	code, out, _ := runTool(t, strings.NewReader(sampleTrace), "-diagram", "-matrix")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "P1") || !strings.Contains(out, "m1  ") {
		t.Fatalf("diagram/matrix missing:\n%s", out)
	}
}

func TestTraceFileAndDecompFile(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "t.trace")
	if err := os.WriteFile(traceFile, []byte("n 3\nm 0 1\nm 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	decompFile := filepath.Join(dir, "d.txt")
	// Star at process 1 covers both channels.
	if err := os.WriteFile(decompFile, []byte("n 3\nstar 1 0 1 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runTool(t, nil, "-trace", traceFile, "-decomp", decompFile, "-verify")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "d=1") {
		t.Fatalf("expected d=1 from the provided decomposition:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	badDecomp := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(badDecomp, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	okTrace := filepath.Join(dir, "ok.trace")
	if err := os.WriteFile(okTrace, []byte(sampleTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		stdin string
		args  []string
	}{
		{"not a trace", nil},
		{sampleTrace, []string{"-mode", "zzz"}},
		{"", []string{"-trace", filepath.Join(dir, "missing")}},
		{"", []string{"-trace", okTrace, "-decomp", badDecomp}},
		{sampleTrace, []string{"-badflag"}},
		// Decomposition that does not cover the trace's channels.
		{"n 3\nm 0 2\n", []string{"-decomp", mkDecomp(t, dir)}},
	}
	for _, tc := range cases {
		if code, _, _ := runTool(t, strings.NewReader(tc.stdin), tc.args...); code == 0 {
			t.Errorf("args %v succeeded, want failure", tc.args)
		}
	}
}

func mkDecomp(t *testing.T, dir string) string {
	t.Helper()
	p := filepath.Join(dir, "partial.txt")
	if err := os.WriteFile(p, []byte("n 3\nstar 0 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestJSONOutput(t *testing.T) {
	code, out, errOut := runTool(t, strings.NewReader(sampleTrace), "-json")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	var parsed []struct {
		Index int   `json:"index"`
		From  int   `json:"from"`
		To    int   `json:"to"`
		Stamp []int `json:"stamp"`
	}
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, out)
	}
	if len(parsed) != 6 {
		t.Fatalf("parsed %d messages, want 6", len(parsed))
	}
	if parsed[0].From != 0 || parsed[0].To != 1 || len(parsed[0].Stamp) == 0 {
		t.Fatalf("first message: %+v", parsed[0])
	}
	if !strings.Contains(errOut, "mode=online") {
		t.Fatalf("mode header should move to stderr in JSON mode: %q", errOut)
	}
}
