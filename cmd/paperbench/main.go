// Command paperbench regenerates the paper's figures and measurable claims
// as printed tables (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for the recorded outputs).
//
// Usage:
//
//	paperbench            # run everything
//	paperbench -e E4      # one experiment
//	paperbench -list      # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"syncstamp/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	id := fs.String("e", "", "experiment id to run (default: all)")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}
	if *id != "" {
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(stderr, "paperbench: unknown experiment %q (try -list)\n", *id)
			return 1
		}
		if err := experiments.RunOne(stdout, e); err != nil {
			fmt.Fprintln(stderr, "paperbench:", err)
			return 1
		}
		return 0
	}
	if err := experiments.RunAll(stdout); err != nil {
		fmt.Fprintln(stderr, "paperbench:", err)
		return 1
	}
	return 0
}
