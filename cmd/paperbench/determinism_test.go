package main

import (
	"bytes"
	"testing"
)

// TestRunTwiceByteIdentical runs the full experiment sweep twice in one
// process and asserts byte-identical output. This locks in what the mapiter
// analyzer protects statically: every experiment is seeded, and nothing on
// the stamping, decomposition, or rendering paths may leak map-iteration
// (or any other) nondeterminism into the tables — the same discipline the
// SYNCSTAMP_CHECK_SEED replay of the property harness depends on.
func TestRunTwiceByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("double experiment sweep skipped in -short mode")
	}
	sweep := func() []byte {
		var out, errOut bytes.Buffer
		if code := run(nil, &out, &errOut); code != 0 {
			t.Fatalf("paperbench exited %d: %s", code, errOut.String())
		}
		return out.Bytes()
	}
	first := sweep()
	second := sweep()
	if !bytes.Equal(first, second) {
		a := bytes.Split(first, []byte("\n"))
		b := bytes.Split(second, []byte("\n"))
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("output differs between identical runs at line %d:\n run1: %q\n run2: %q", i+1, a[i], b[i])
			}
		}
		t.Fatalf("output differs in length between identical runs: %d vs %d lines", len(a), len(b))
	}
}
