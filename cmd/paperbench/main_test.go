package main

import (
	"bytes"
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestList(t *testing.T) {
	code, out, _ := runTool(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"E1", "E16", "D2"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	code, out, errOut := runTool(t, "-e", "E4")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "=== E4:") || !strings.Contains(out, "(1,1,1)") {
		t.Fatalf("E4 output wrong:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("E4 reported FAIL:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, errOut := runTool(t, "-e", "E99")
	if code == 0 || !strings.Contains(errOut, "unknown experiment") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runTool(t, "-zzz"); code == 0 {
		t.Fatal("bad flag accepted")
	}
}
