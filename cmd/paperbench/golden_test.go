package main

import (
	"bytes"
	"os"
	"regexp"
	"strings"
	"testing"
)

// timingLine matches output lines that report wall-clock measurements and
// may legitimately vary between runs; everything else must be byte-stable.
var timingLine = regexp.MustCompile(`(?i)\b(elapsed|seconds|ms/op|ns/op|µs)\b`)

func normalizeGolden(s string) []string {
	var lines []string
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimRight(line, " \t")
		if timingLine.MatchString(line) {
			line = "<timing>"
		}
		lines = append(lines, line)
	}
	return lines
}

// TestGoldenOutput regenerates every experiment in-process and diffs it
// against the committed paperbench_output.txt. Run `make repro` to refresh
// the golden file after an intentional change.
func TestGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	goldenBytes, err := os.ReadFile("../../paperbench_output.txt")
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("paperbench exited %d: %s", code, errOut.String())
	}
	got := normalizeGolden(out.String())
	want := normalizeGolden(string(goldenBytes))
	limit := len(got)
	if len(want) < limit {
		limit = len(want)
	}
	for i := 0; i < limit; i++ {
		if got[i] != want[i] {
			t.Fatalf("output drifted from paperbench_output.txt at line %d:\n got: %q\nwant: %q\n(run `make repro` if the change is intentional)",
				i+1, got[i], want[i])
		}
	}
	if len(got) != len(want) {
		t.Fatalf("output has %d lines, golden has %d (run `make repro` if intentional)", len(got), len(want))
	}
	if strings.Contains(out.String(), "FAIL") {
		t.Fatal("fresh run reports experiment FAILures")
	}
}
