// Command tsdecomp computes edge decompositions of communication topologies
// (Section 3 of the paper) and reports their sizes against the Theorem 5
// bound.
//
// Usage:
//
//	tsdecomp -topology complete:8                 # Figure 7 algorithm
//	tsdecomp -topology figure2b -algo exact       # branch-and-bound optimum
//	tsdecomp -graph topo.txt -algo staronly       # from a graph file
//	tsdecomp -topology tree:3x2 -dot out.dot      # Graphviz with group colors
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/topospec"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsdecomp", flag.ContinueOnError)
	topoSpec := fs.String("topology", "", "topology spec (see tsgen -help-topologies)")
	graphFile := fs.String("graph", "", "read the topology from a graph text file instead")
	algo := fs.String("algo", "fig7", "algorithm: fig7 | fig7-first | fig7-multi | staronly | trivial | trivial-stars | cover | best | exact")
	dotOut := fs.String("dot", "", "also write a Graphviz rendering with group colors")
	decompOut := fs.String("o", "", "write the decomposition in text format to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	g, err := loadGraph(*topoSpec, *graphFile)
	if err != nil {
		fmt.Fprintln(stderr, "tsdecomp:", err)
		return 1
	}

	var d *decomp.Decomposition
	switch *algo {
	case "fig7":
		var tr *decomp.Trace
		d, tr = decomp.ApproximateTraced(g, decomp.ChooseMaxAdjacent)
		defer func() {
			fmt.Fprintf(stdout, "figure-7 steps: %v\n", tr.Steps)
		}()
	case "fig7-first":
		d, _ = decomp.ApproximateTraced(g, decomp.ChooseFirst)
	case "fig7-multi":
		d = decomp.ApproximateMultiStart(g, 12, rand.New(rand.NewSource(1)))
	case "staronly":
		d = decomp.StarOnly(g)
	case "trivial":
		d = decomp.TrivialWithTriangle(g)
	case "trivial-stars":
		d = decomp.TrivialStars(g)
	case "cover":
		cover, err := decomp.MinVertexCover(g, 0)
		if err != nil {
			fmt.Fprintln(stderr, "tsdecomp:", err)
			return 1
		}
		d, err = decomp.FromVertexCover(g, cover)
		if err != nil {
			fmt.Fprintln(stderr, "tsdecomp:", err)
			return 1
		}
	case "best":
		d = decomp.Best(g)
	case "exact":
		var err error
		d, err = decomp.Exact(g, 0)
		if err != nil {
			fmt.Fprintln(stderr, "tsdecomp:", err)
			return 1
		}
	default:
		fmt.Fprintf(stderr, "tsdecomp: unknown -algo %q\n", *algo)
		return 1
	}

	if err := d.Validate(g); err != nil {
		fmt.Fprintln(stderr, "tsdecomp: internal error:", err)
		return 1
	}
	fmt.Fprintf(stdout, "topology: N=%d channels=%d\n", g.N(), g.M())
	fmt.Fprintf(stdout, "decomposition: d=%d (%d stars, %d triangles)\n", d.D(), d.Stars(), d.Triangles())
	fmt.Fprintf(stdout, "vs Fidge–Mattern: %d components -> %d components\n", g.N(), d.D())
	for i, grp := range d.Groups() {
		fmt.Fprintf(stdout, "  E%d = %s\n", i+1, grp)
	}

	if *decompOut != "" {
		if err := writeFile(*decompOut, func(f *os.File) error {
			return decomp.WriteText(f, d)
		}); err != nil {
			fmt.Fprintln(stderr, "tsdecomp:", err)
			return 1
		}
	}
	if *dotOut != "" {
		dot := graph.DOT(g, "decomposition", func(e graph.Edge) (int, bool) {
			return d.GroupOf(e.U, e.V)
		})
		if err := os.WriteFile(*dotOut, []byte(dot), 0o644); err != nil {
			fmt.Fprintln(stderr, "tsdecomp:", err)
			return 1
		}
	}
	return 0
}

func loadGraph(spec, file string) (*graph.Graph, error) {
	switch {
	case spec != "" && file != "":
		return nil, fmt.Errorf("use either -topology or -graph, not both")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer func() {
			_ = f.Close() // read-only file
		}()
		return graph.ReadText(f)
	case spec != "":
		return topospec.Parse(spec)
	default:
		return nil, fmt.Errorf("need -topology or -graph")
	}
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
