package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestFig7OnFigure2b(t *testing.T) {
	code, out, errOut := runTool(t, "-topology", "figure2b", "-algo", "fig7")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"d=5", "4 stars, 1 triangles", "figure-7 steps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAllAlgos(t *testing.T) {
	for _, algo := range []string{"fig7", "fig7-first", "fig7-multi", "staronly", "trivial", "trivial-stars", "cover", "best", "exact"} {
		code, out, errOut := runTool(t, "-topology", "complete:5", "-algo", algo)
		if code != 0 {
			t.Fatalf("algo %s: exit %d: %s", algo, code, errOut)
		}
		if !strings.Contains(out, "decomposition: d=") {
			t.Fatalf("algo %s output:\n%s", algo, out)
		}
	}
}

func TestGraphFileAndOutputs(t *testing.T) {
	dir := t.TempDir()
	graphFile := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(graphFile, []byte("n 3\ne 0 1\ne 1 2\ne 0 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	decompFile := filepath.Join(dir, "d.txt")
	dotFile := filepath.Join(dir, "g.dot")
	code, out, errOut := runTool(t, "-graph", graphFile, "-o", decompFile, "-dot", dotFile)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "d=1") {
		t.Fatalf("triangle should decompose into one group:\n%s", out)
	}
	dec, err := os.ReadFile(decompFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dec), "triangle") {
		t.Fatalf("decomposition file: %s", dec)
	}
	dot, err := os.ReadFile(dotFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dot), "graph") {
		t.Fatalf("dot file: %s", dot)
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	gf := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(gf, []byte("n 2\ne 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},                                     // neither -topology nor -graph
		{"-topology", "star:3", "-graph", gf},  // both
		{"-topology", "nope:1"},                // bad spec
		{"-graph", filepath.Join(dir, "none")}, // missing file
		{"-topology", "star:4", "-algo", "zzz"},
		{"-topology", "complete:30", "-algo", "exact"}, // over exact limit
		{"-badflag"},
	}
	for _, args := range cases {
		if code, _, _ := runTool(t, args...); code == 0 {
			t.Errorf("args %v succeeded, want failure", args)
		}
	}
}
