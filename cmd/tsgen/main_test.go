package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"syncstamp/internal/trace"
)

func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestGenerateToStdout(t *testing.T) {
	code, out, errOut := runTool(t, "-topology", "star:4", "-messages", "10", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	tr, err := trace.ReadText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("output not parseable: %v", err)
	}
	if tr.N != 4 || tr.NumMessages() != 10 {
		t.Fatalf("N=%d msgs=%d", tr.N, tr.NumMessages())
	}
}

func TestGenerateToFileDeterministic(t *testing.T) {
	dir := t.TempDir()
	f1 := filepath.Join(dir, "a.trace")
	f2 := filepath.Join(dir, "b.trace")
	for _, f := range []string{f1, f2} {
		code, _, errOut := runTool(t, "-topology", "complete:5", "-messages", "20", "-seed", "9", "-o", f)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errOut)
		}
	}
	b1, err := os.ReadFile(f1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(f2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed produced different traces")
	}
}

func TestHelpTopologies(t *testing.T) {
	code, out, _ := runTool(t, "-help-topologies")
	if code != 0 || !strings.Contains(out, "clientserver") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestInternalEvents(t *testing.T) {
	code, out, _ := runTool(t, "-topology", "path:3", "-messages", "50", "-internal", "0.4", "-seed", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	tr, err := trace.ReadText(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumInternal() == 0 {
		t.Fatal("expected internal events")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-topology", "bogus:3"},
		{"-topology", "star:4", "-messages", "-1"},
		{"-topology", "star:4", "-internal", "1.5"},
		{"-notaflag"},
		{"-topology", "star:4", "-o", filepath.Join(t.TempDir(), "no", "such", "dir", "x")},
	}
	for _, args := range cases {
		if code, _, _ := runTool(t, args...); code == 0 {
			t.Errorf("args %v succeeded, want failure", args)
		}
	}
}

func TestWorkloads(t *testing.T) {
	cases := []struct {
		spec string
		n    int
		msgs int
	}{
		{"rpc:2x3x2", 5, 24},
		{"ring:5x2", 5, 10},
		{"treegs:2x2x1", 7, 12},
		{"pipeline:4x3", 4, 9},
	}
	for _, tc := range cases {
		code, out, errOut := runTool(t, "-workload", tc.spec)
		if code != 0 {
			t.Fatalf("%s: exit %d: %s", tc.spec, code, errOut)
		}
		tr, err := trace.ReadText(strings.NewReader(out))
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if tr.N != tc.n || tr.NumMessages() != tc.msgs {
			t.Fatalf("%s: N=%d msgs=%d, want N=%d msgs=%d", tc.spec, tr.N, tr.NumMessages(), tc.n, tc.msgs)
		}
	}
}

func TestWorkloadErrors(t *testing.T) {
	for _, spec := range []string{"rpc", "rpc:2x3", "rpc:axb xc", "ring:2x1", "pipeline:1x1", "zzz:1x2", "rpc:0x1x1"} {
		if code, _, _ := runTool(t, "-workload", spec); code == 0 {
			t.Errorf("workload %q succeeded, want failure", spec)
		}
	}
}
