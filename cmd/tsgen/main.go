// Command tsgen generates random synchronous computations over a chosen
// communication topology and writes them in the trace text format consumed
// by tsstamp.
//
// Usage:
//
//	tsgen -topology clientserver:2x10 -messages 200 -internal 0.2 -seed 7 -o run.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"syncstamp/internal/topospec"
	"syncstamp/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsgen", flag.ContinueOnError)
	topoSpec := fs.String("topology", "complete:5", "topology spec (see -help-topologies)")
	workload := fs.String("workload", "", "structured workload instead of random traffic: rpc:SxCxR | ring:NxR | treegs:BxDxR | pipeline:NxI")
	messages := fs.Int("messages", 100, "number of messages to generate")
	internal := fs.Float64("internal", 0, "internal-event probability in [0,1)")
	hotspot := fs.Float64("hotspot", 0, "probability of reusing a participant of the previous message")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "", "output file (default stdout)")
	helpTopo := fs.Bool("help-topologies", false, "print the topology spec vocabulary and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *helpTopo {
		fmt.Fprintln(stdout, topospec.Help)
		return 0
	}
	var tr *trace.Trace
	if *workload != "" {
		var err error
		tr, err = parseWorkload(*workload)
		if err != nil {
			fmt.Fprintln(stderr, "tsgen:", err)
			return 1
		}
	} else {
		topo, err := topospec.Parse(*topoSpec)
		if err != nil {
			fmt.Fprintln(stderr, "tsgen:", err)
			return 1
		}
		if *messages < 0 || *internal < 0 || *internal >= 1 {
			fmt.Fprintln(stderr, "tsgen: invalid -messages or -internal")
			return 1
		}
		tr = trace.Generate(topo, trace.GenOptions{
			Messages:     *messages,
			InternalProb: *internal,
			Hotspot:      *hotspot,
		}, rand.New(rand.NewSource(*seed)))
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "tsgen:", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "tsgen: close:", err)
			}
		}()
		w = f
	}
	if err := trace.WriteText(w, tr); err != nil {
		fmt.Fprintln(stderr, "tsgen:", err)
		return 1
	}
	return 0
}

// parseWorkload builds a structured workload from specs like "rpc:2x10x3"
// (servers x clients x rpcs), "ring:8x5" (processes x rounds), "treegs:2x3x2"
// (branching x depth x rounds), or "pipeline:4x20" (stages x items).
func parseWorkload(spec string) (tr *trace.Trace, err error) {
	// The workload constructors panic on invalid shapes; surface those as
	// errors for CLI friendliness.
	defer func() {
		if r := recover(); r != nil {
			tr, err = nil, fmt.Errorf("%v", r)
		}
	}()
	name, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("tsgen: workload %q missing parameters", spec)
	}
	var dims []int
	for _, part := range strings.Split(strings.ToLower(rest), "x") {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("tsgen: bad workload parameter %q in %q", part, spec)
		}
		dims = append(dims, v)
	}
	need := func(n int) error {
		if len(dims) != n {
			return fmt.Errorf("tsgen: workload %s needs %d parameters, got %d", name, n, len(dims))
		}
		return nil
	}
	switch strings.ToLower(name) {
	case "rpc":
		if err := need(3); err != nil {
			return nil, err
		}
		return trace.RPCWorkload(dims[0], dims[1], dims[2]), nil
	case "ring":
		if err := need(2); err != nil {
			return nil, err
		}
		return trace.RingToken(dims[0], dims[1]), nil
	case "treegs":
		if err := need(3); err != nil {
			return nil, err
		}
		return trace.TreeGatherScatter(dims[0], dims[1], dims[2]), nil
	case "pipeline":
		if err := need(2); err != nil {
			return nil, err
		}
		return trace.Pipeline(dims[0], dims[1]), nil
	default:
		return nil, fmt.Errorf("tsgen: unknown workload %q", name)
	}
}
