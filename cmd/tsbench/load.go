package main

import (
	"fmt"
	"os"
	"runtime"

	"syncstamp/internal/csp"
	"syncstamp/internal/load"
	"syncstamp/internal/node"
)

// runLoadScenario measures the collector tree under the open-loop driver.
// The workload is pairs·rounds clients sending one message each into a
// 16-server pool — same record volume as the pair scenarios. The baseline
// arm collects flat (one leaf, everything resident, no spill); the batched
// arm shards across four spilling leaves. Both arms run workers=1, so the
// workload is deterministic and the two arms must produce — and verify —
// the identical logs.
func runLoadScenario(sc scenario, pairs, rounds, trials int, seed int64) (*Report, error) {
	clients := pairs * rounds
	rep := &Report{
		Schema: Schema, Name: sc.name, Seed: seed,
		Pairs: pairs, Rounds: rounds, Messages: clients,
		Modes: make(map[string]ModeResult),
	}
	var base, batched ModeResult
	var logs [][]csp.Record
	for t := 0; t < trials; t++ {
		for _, arm := range []bool{false, true} {
			res, armLogs, err := runLoadMode(clients, seed, arm)
			if err != nil {
				return nil, fmt.Errorf("%s trial %d: %w", armName(arm), t, err)
			}
			if logs == nil {
				logs = armLogs
			} else if err := sameLogs(logs, armLogs); err != nil {
				return nil, fmt.Errorf("%s trial %d diverged: %w", armName(arm), t, err)
			}
			if arm {
				if res.MsgsPerSec > batched.MsgsPerSec {
					batched = res
				}
			} else if res.MsgsPerSec > base.MsgsPerSec {
				base = res
			}
		}
	}
	rep.Modes["baseline"] = base
	rep.Modes["batched"] = batched
	if base.MsgsPerSec > 0 {
		rep.Speedup = batched.MsgsPerSec / base.MsgsPerSec
	}
	return rep, nil
}

// runLoadMode runs one arm of the load scenario: flat single-leaf
// collection (baseline) or a 4-leaf spilling tree (batched).
func runLoadMode(clients int, seed int64, batched bool) (ModeResult, [][]csp.Record, error) {
	tree := node.TreeConfig{Leaves: 1, KeepLogs: true}
	var cleanup func()
	if batched {
		dir, err := os.MkdirTemp("", "tsbench-spill-")
		if err != nil {
			return ModeResult{}, nil, err
		}
		cleanup = func() { _ = os.RemoveAll(dir) }
		tree = node.TreeConfig{Leaves: 4, SpillDir: dir, SegmentRecords: 256, KeepLogs: true}
	}
	if cleanup != nil {
		defer cleanup()
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := load.Run(load.Config{
		Servers:           16,
		Clients:           clients,
		MessagesPerClient: 1,
		ZipfTheta:         0.9,
		Seed:              seed,
		Workers:           1,
		Tree:              tree,
	})
	runtime.ReadMemStats(&after)
	if err != nil {
		return ModeResult{}, nil, err
	}
	if !res.Verdict.OK {
		return ModeResult{}, nil, fmt.Errorf("load run failed verification: %v", res.Verdict.Problems)
	}
	if batched && res.Verdict.SegmentsSpilled == 0 {
		return ModeResult{}, nil, fmt.Errorf("batched arm never spilled")
	}
	mr := ModeResult{
		MsgsPerSec:      res.AchievedPerSec,
		P50NS:           res.P50(),
		P99NS:           res.P99(),
		BytesPerMsg:     float64(res.Verdict.SpillBytes) / float64(res.Messages),
		AllocsPerOp:     float64(after.Mallocs-before.Mallocs) / float64(res.Messages),
		ElapsedNS:       res.Elapsed.Nanoseconds(),
		Messages:        int(res.Messages),
		SegmentsSpilled: res.Verdict.SegmentsSpilled,
		SpillBytes:      res.Verdict.SpillBytes,
		ShardsVerified:  int64(res.Verdict.Shards),
	}
	return mr, res.Logs, nil
}
