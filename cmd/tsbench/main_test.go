package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestQuickRunEmitsValidReports runs the full harness in-process on a tiny
// workload and checks every scenario writes a BENCH_*.json that Validate
// accepts and that carries both arms. Speedup is deliberately not asserted:
// a loaded CI box can flip a marginal ratio, and the committed numbers are
// produced by `make bench` runs, not by this smoke test.
func TestQuickRunEmitsValidReports(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{"-quick", "-pairs", "2", "-rounds", "10", "-out", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	for _, sc := range scenarios {
		path := filepath.Join(dir, "BENCH_"+sc.name+".json")
		if err := Validate(path); err != nil {
			t.Errorf("scenario %s: %v", sc.name, err)
			continue
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		var rep Report
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		if rep.Name != sc.name {
			t.Errorf("scenario %s: report name %q", sc.name, rep.Name)
		}
		if sc.journal {
			m := rep.Modes["batched"]
			if m.JournalAppends == 0 {
				t.Errorf("scenario %s: batched arm recorded no journal appends", sc.name)
			}
			if m.JournalSyncs > m.JournalAppends {
				t.Errorf("scenario %s: %d syncs for %d appends", sc.name, m.JournalSyncs, m.JournalAppends)
			}
		}
	}
}

// TestScenarioSelection covers the -bench flag parser.
func TestScenarioSelection(t *testing.T) {
	all, err := selectScenarios("all")
	if err != nil || len(all) != len(scenarios) {
		t.Fatalf("all: %v, %d scenarios", err, len(all))
	}
	two, err := selectScenarios("tcp, journal")
	if err != nil || len(two) != 2 || two[0].name != "tcp" || two[1].name != "journal" {
		t.Fatalf("tcp,journal: %v, %+v", err, two)
	}
	if _, err := selectScenarios("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestValidateRejectsBrokenReports checks the contract make bench relies on.
func TestValidateRejectsBrokenReports(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep Report) string {
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := Report{
		Schema: Schema, Name: "x", Messages: 10,
		Modes: map[string]ModeResult{
			"baseline": {MsgsPerSec: 1},
			"batched":  {MsgsPerSec: 2},
		},
	}
	if err := Validate(write("good.json", good)); err != nil {
		t.Fatalf("good report rejected: %v", err)
	}
	bad := good
	bad.Schema = Schema + 1
	if err := Validate(write("schema.json", bad)); err == nil {
		t.Error("wrong schema accepted")
	}
	bad = good
	bad.Modes = map[string]ModeResult{"baseline": {MsgsPerSec: 1}}
	if err := Validate(write("missing.json", bad)); err == nil {
		t.Error("missing batched arm accepted")
	}
	bad = good
	bad.Modes = map[string]ModeResult{"baseline": {MsgsPerSec: 1}, "batched": {}}
	if err := Validate(write("zero.json", bad)); err == nil {
		t.Error("zero throughput accepted")
	}
}
