package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestQuickRunEmitsValidReports runs the full harness in-process on a tiny
// workload and checks every scenario writes a BENCH_*.json that Validate
// accepts and that carries both arms. Speedup is deliberately not asserted:
// a loaded CI box can flip a marginal ratio, and the committed numbers are
// produced by `make bench` runs, not by this smoke test.
func TestQuickRunEmitsValidReports(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{"-quick", "-pairs", "2", "-rounds", "10", "-out", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	for _, sc := range scenarios {
		path := filepath.Join(dir, "BENCH_"+sc.name+".json")
		if err := Validate(path); err != nil {
			t.Errorf("scenario %s: %v", sc.name, err)
			continue
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		var rep Report
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		if rep.Name != sc.name {
			t.Errorf("scenario %s: report name %q", sc.name, rep.Name)
		}
		if sc.journal {
			m := rep.Modes["batched"]
			if m.JournalAppends == 0 {
				t.Errorf("scenario %s: batched arm recorded no journal appends", sc.name)
			}
			if m.JournalSyncs > m.JournalAppends {
				t.Errorf("scenario %s: %d syncs for %d appends", sc.name, m.JournalSyncs, m.JournalAppends)
			}
		}
		if sc.async {
			for _, mode := range []string{"baseline" + asyncLossSuffix, "batched" + asyncLossSuffix} {
				m, ok := rep.Modes[mode]
				if !ok {
					t.Errorf("scenario %s: missing %s mode", sc.name, mode)
					continue
				}
				if !(m.MsgsPerSec > 0) {
					t.Errorf("scenario %s: %s msgs_per_sec = %v, want > 0", sc.name, mode, m.MsgsPerSec)
				}
			}
		}
		if sc.load {
			m := rep.Modes["batched"]
			if m.SegmentsSpilled == 0 || m.SpillBytes == 0 {
				t.Errorf("scenario %s: batched arm never spilled (%d segments, %d bytes)", sc.name, m.SegmentsSpilled, m.SpillBytes)
			}
			if m.ShardsVerified != 4 {
				t.Errorf("scenario %s: batched arm verified %d shards, want 4", sc.name, m.ShardsVerified)
			}
			if flat := rep.Modes["baseline"]; flat.SegmentsSpilled != 0 {
				t.Errorf("scenario %s: flat baseline spilled %d segments", sc.name, flat.SegmentsSpilled)
			}
		}
	}
}

// TestScenarioSelection covers the -bench flag parser.
func TestScenarioSelection(t *testing.T) {
	all, err := selectScenarios("all")
	if err != nil || len(all) != len(scenarios) {
		t.Fatalf("all: %v, %d scenarios", err, len(all))
	}
	two, err := selectScenarios("tcp, journal")
	if err != nil || len(two) != 2 || two[0].name != "tcp" || two[1].name != "journal" {
		t.Fatalf("tcp,journal: %v, %+v", err, two)
	}
	if _, err := selectScenarios("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestCompareMode covers the CI regression gate: within-threshold drift and
// one-sided scenarios pass, a batched-arm drop beyond -regress fails, and a
// missing previous directory (first run, no artifact) is tolerated.
func TestCompareMode(t *testing.T) {
	mkReport := func(name string, batched float64) Report {
		return Report{
			Schema: Schema, Name: name, Messages: 10,
			Modes: map[string]ModeResult{
				"baseline": {MsgsPerSec: batched / 2},
				"batched":  {MsgsPerSec: batched},
			},
		}
	}
	writeDir := func(reports ...Report) string {
		dir := t.TempDir()
		for _, rep := range reports {
			b, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "BENCH_"+rep.Name+".json"), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}
	runCompare := func(prev, cur string) (int, string, string) {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-compare", prev, "-out", cur}, &stdout, &stderr)
		return code, stdout.String(), stderr.String()
	}

	// 5% drop on loop, new scenario on the current side, one dropped on the
	// previous side: all within the 10% default.
	prev := writeDir(mkReport("loop", 1000), mkReport("gone", 500))
	cur := writeDir(mkReport("loop", 950), mkReport("tcp", 2000))
	if code, out, errOut := runCompare(prev, cur); code != 0 {
		t.Fatalf("5%% drift failed (exit %d)\nstdout: %s\nstderr: %s", code, out, errOut)
	}

	// 20% drop must fail and name the scenario.
	cur = writeDir(mkReport("loop", 800))
	if code, _, errOut := runCompare(prev, cur); code != 1 {
		t.Fatalf("20%% regression passed (exit %d)", code)
	} else if !bytes.Contains([]byte(errOut), []byte("loop")) {
		t.Fatalf("regression message does not name the scenario: %s", errOut)
	}

	// A custom threshold widens the gate.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", prev, "-out", cur, "-regress", "30"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-regress 30 still failed on a 20%% drop: %s", stderr.String())
	}

	// No previous artifact: everything is new, nothing fails.
	if code, _, errOut := runCompare(filepath.Join(t.TempDir(), "never-downloaded"), cur); code != 0 {
		t.Fatalf("missing previous dir failed (exit %d): %s", code, errOut)
	}

	// No current reports is an error: the bench step upstream must have run.
	if code, _, _ := runCompare(prev, t.TempDir()); code != 1 {
		t.Fatalf("empty current dir passed (exit %d)", code)
	}
}

// TestValidateRejectsBrokenReports checks the contract make bench relies on.
func TestValidateRejectsBrokenReports(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep Report) string {
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := Report{
		Schema: Schema, Name: "x", Messages: 10,
		Modes: map[string]ModeResult{
			"baseline": {MsgsPerSec: 1},
			"batched":  {MsgsPerSec: 2},
		},
	}
	if err := Validate(write("good.json", good)); err != nil {
		t.Fatalf("good report rejected: %v", err)
	}
	bad := good
	bad.Schema = Schema + 1
	if err := Validate(write("schema.json", bad)); err == nil {
		t.Error("wrong schema accepted")
	}
	bad = good
	bad.Modes = map[string]ModeResult{"baseline": {MsgsPerSec: 1}}
	if err := Validate(write("missing.json", bad)); err == nil {
		t.Error("missing batched arm accepted")
	}
	bad = good
	bad.Modes = map[string]ModeResult{"baseline": {MsgsPerSec: 1}, "batched": {}}
	if err := Validate(write("zero.json", bad)); err == nil {
		t.Error("zero throughput accepted")
	}
}

// TestCompareToleratesNewLoadArtifact pins the gate's behavior on exactly
// the transition this scenario creates: a previous artifact from before the
// load benchmark existed must compare green, reporting the new scenario as
// having no previous report.
func TestCompareToleratesNewLoadArtifact(t *testing.T) {
	mk := func(name string, batched float64) []byte {
		rep := Report{
			Schema: Schema, Name: name, Messages: 10,
			Modes: map[string]ModeResult{
				"baseline": {MsgsPerSec: batched / 2},
				"batched":  {MsgsPerSec: batched},
			},
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	prev, cur := t.TempDir(), t.TempDir()
	for _, name := range []string{"loop", "tcp", "journal"} {
		if err := os.WriteFile(filepath.Join(prev, "BENCH_"+name+".json"), mk(name, 1000), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cur, "BENCH_"+name+".json"), mk(name, 1000), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(cur, "BENCH_load.json"), mk("load", 5000), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", prev, "-out", cur}, &stdout, &stderr); code != 0 {
		t.Fatalf("new load artifact failed the gate (exit %d)\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !bytes.Contains(stdout.Bytes(), []byte("load")) || !bytes.Contains(stdout.Bytes(), []byte("no previous report")) {
		t.Fatalf("compare output does not report the new scenario:\n%s", stdout.String())
	}
}

// TestCompareToleratesNewAsyncArtifact pins the same transition for the
// async benchmark: a previous artifact set from before BENCH_async.json
// existed compares green, and the extra loss modes in the new report do
// not confuse the batched-arm gate.
func TestCompareToleratesNewAsyncArtifact(t *testing.T) {
	mk := func(name string, batched float64, lossModes bool) []byte {
		rep := Report{
			Schema: Schema, Name: name, Messages: 10,
			Modes: map[string]ModeResult{
				"baseline": {MsgsPerSec: batched / 2},
				"batched":  {MsgsPerSec: batched},
			},
		}
		if lossModes {
			rep.Modes["baseline"+asyncLossSuffix] = ModeResult{MsgsPerSec: batched / 4, Retransmits: 7}
			rep.Modes["batched"+asyncLossSuffix] = ModeResult{MsgsPerSec: batched / 3, Retransmits: 5}
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	prev, cur := t.TempDir(), t.TempDir()
	for _, name := range []string{"loop", "tcp", "journal", "load"} {
		if err := os.WriteFile(filepath.Join(prev, "BENCH_"+name+".json"), mk(name, 1000, false), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cur, "BENCH_"+name+".json"), mk(name, 1000, false), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(cur, "BENCH_async.json"), mk("async", 3000, true), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", prev, "-out", cur}, &stdout, &stderr); code != 0 {
		t.Fatalf("new async artifact failed the gate (exit %d)\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !bytes.Contains(stdout.Bytes(), []byte("async")) || !bytes.Contains(stdout.Bytes(), []byte("no previous report")) {
		t.Fatalf("compare output does not report the new scenario:\n%s", stdout.String())
	}
}
