package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Compare mode diffs the current BENCH_*.json reports against a previous
// run's set (CI downloads the last successful run's bench-reports artifact
// into the previous directory). The gate is the batched arm's msgs/sec —
// the number the coalescing writer and group-commit journal exist to
// protect: a drop beyond the threshold fails the run. Scenarios present on
// only one side are reported but never fail, so adding a benchmark (or
// comparing against a run from before one existed) stays green.

// compareDirs reports per-scenario throughput deltas and returns an error
// listing every scenario whose batched msgs/sec regressed by more than
// threshold percent.
func compareDirs(prevDir, curDir string, threshold float64, stdout io.Writer) error {
	prev, err := readReports(prevDir)
	if err != nil {
		return err
	}
	cur, err := readReports(curDir)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("no BENCH_*.json in %s", curDir)
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressed []string
	for _, name := range names {
		c := cur[name]
		p, ok := prev[name]
		if !ok {
			fmt.Fprintf(stdout, "tsbench compare %-8s batched %9.0f msgs/s  (no previous report)\n",
				name, c.Modes["batched"].MsgsPerSec)
			continue
		}
		was, now := p.Modes["batched"].MsgsPerSec, c.Modes["batched"].MsgsPerSec
		if was <= 0 {
			fmt.Fprintf(stdout, "tsbench compare %-8s batched %9.0f msgs/s  (previous report unusable)\n", name, now)
			continue
		}
		deltaPct := (now - was) / was * 100
		fmt.Fprintf(stdout, "tsbench compare %-8s batched %9.0f -> %9.0f msgs/s  (%+.1f%%)\n",
			name, was, now, deltaPct)
		if deltaPct < -threshold {
			regressed = append(regressed,
				fmt.Sprintf("%s: batched %.0f -> %.0f msgs/s (%.1f%% drop > %.0f%% threshold)",
					name, was, now, -deltaPct, threshold))
		}
	}
	for name := range prev {
		if _, ok := cur[name]; !ok {
			fmt.Fprintf(stdout, "tsbench compare %-8s dropped (previous report has no current counterpart)\n", name)
		}
	}
	if len(regressed) > 0 {
		msg := "throughput regression:"
		for _, r := range regressed {
			msg += "\n  " + r
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// readReports loads every valid BENCH_*.json in dir, keyed by scenario name.
// A missing directory is an empty set, not an error: the first CI run has no
// previous artifact to download.
func readReports(dir string) (map[string]*Report, error) {
	out := make(map[string]*Report)
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep Report
		if err := json.Unmarshal(b, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if rep.Schema != Schema || rep.Name == "" {
			// A report from a different schema era can't be compared
			// meaningfully; skip it rather than fail the gate.
			continue
		}
		out[rep.Name] = &rep
	}
	return out, nil
}
