// Command tsbench measures the distributed runtime's hot path and emits
// machine-readable BENCH_<name>.json files — the performance trajectory the
// repository tracks across PRs.
//
// The workload is a matching topology: P independent channel pairs, the
// even process of each pair on node 0 and the odd one on node 1, every pair
// ping-ponging R rounds concurrently. All traffic crosses the single data
// connection between the two nodes, which makes the workload exactly the
// case the coalescing writer and the group-commit journal exist for: many
// concurrent rendezvous sharing one stream and one journal.
//
// Every scenario runs twice — a baseline arm with coalescing disabled (and
// the journal in fsync-per-record mode) and a batched arm with the
// defaults — and the report carries both plus their msgs/sec ratio. The
// two arms must produce identical rendezvous stamps; tsbench fails if they
// diverge, so the numbers can never come from a run that broke the clocks.
//
// Scenarios:
//
//	loop     in-memory Loop transport (net.Pipe), no journal
//	tcp      real TCP over localhost, no journal
//	journal  Loop transport with crash-recovery journaling on tmp files
//	load     open-loop load driver through the collector tree: the baseline
//	         arm collects flat (one leaf, everything resident), the batched
//	         arm shards across 4 spilling leaves — the O(shard) collector
//	async    the asynchronous substrate: the baseline arm retransmits on
//	         the recovery layer's fixed doubling backoff, the batched arm
//	         on the α-synchronizer's adaptive RTO; both substrates run at
//	         0% and 5% frame loss (the lossy pair lands in the extra
//	         baseline_loss5/batched_loss5 modes)
//
// Reading BENCH_<name>.json: p50_ns/p99_ns are upper bounds from the
// internal/obs syn_ack_latency_ns histogram (decade buckets, sender-side
// SYN→ACK wait), bytes_per_msg is total wire bytes over messages,
// allocs_per_op is the process-wide heap allocation count per message
// during the run, and journal_syncs well below journal_appends is group
// commit at work. speedup is batched over baseline msgs/sec.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/node"
	"syncstamp/internal/obs"
	"syncstamp/internal/vector"
)

// Schema is the version stamp of the BENCH_*.json layout.
const Schema = 1

// ModeResult is one arm's measurements.
type ModeResult struct {
	MsgsPerSec     float64 `json:"msgs_per_sec"`
	P50NS          int64   `json:"p50_ns"`
	P99NS          int64   `json:"p99_ns"`
	BytesPerMsg    float64 `json:"bytes_per_msg"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	ElapsedNS      int64   `json:"elapsed_ns"`
	Messages       int     `json:"messages"`
	JournalAppends int64   `json:"journal_appends,omitempty"`
	JournalSyncs   int64   `json:"journal_syncs,omitempty"`
	// The load scenario's collector-tree accounting (absent elsewhere).
	SegmentsSpilled int64 `json:"segments_spilled,omitempty"`
	SpillBytes      int64 `json:"spill_bytes,omitempty"`
	ShardsVerified  int64 `json:"shards_verified,omitempty"`
	// The async scenario's retransmission accounting (absent elsewhere).
	Retransmits         int64 `json:"retransmits,omitempty"`
	SpuriousRetransmits int64 `json:"spurious_retransmits,omitempty"`
}

// Report is one scenario's full BENCH_<name>.json document.
type Report struct {
	Schema   int                   `json:"schema"`
	Name     string                `json:"name"`
	Seed     int64                 `json:"seed"`
	Pairs    int                   `json:"pairs"`
	Rounds   int                   `json:"rounds"`
	Messages int                   `json:"messages"`
	Modes    map[string]ModeResult `json:"modes"`
	// Speedup is batched msgs/sec over baseline msgs/sec.
	Speedup float64 `json:"speedup"`
}

// scenario describes one benchmark configuration. scale multiplies the
// -pairs flag: coalescing and group commit are throughput mechanisms that
// only engage when many rendezvous overlap on one stream or one journal,
// so every scenario runs wide enough to measure the mechanism rather than
// an idle queue.
type scenario struct {
	name    string
	tcp     bool
	journal bool
	load    bool
	async   bool
	scale   int
}

var scenarios = []scenario{
	{name: "loop", scale: 4},
	{name: "tcp", tcp: true, scale: 4},
	{name: "journal", journal: true, scale: 4},
	{name: "load", load: true, scale: 4},
	{name: "async", async: true, scale: 2},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	benchFlag := fs.String("bench", "all", "comma-separated scenarios to run: loop, tcp, journal, load, async, or all")
	pairs := fs.Int("pairs", 8, "independent channel pairs (concurrent rendezvous streams)")
	rounds := fs.Int("rounds", 300, "ping-pong rounds per pair (the journal scenario runs a fifth)")
	seed := fs.Int64("seed", 42, "workload seed (internal-event jitter; identical across arms)")
	trials := fs.Int("trials", 3, "trials per arm; the best throughput is reported")
	outDir := fs.String("out", ".", "directory BENCH_<name>.json files are written to")
	quick := fs.Bool("quick", false, "shrink the workload for smoke runs")
	compareDir := fs.String("compare", "", "compare BENCH_*.json in -out against this directory's instead of benchmarking")
	regressPct := fs.Float64("regress", 10, "with -compare: max tolerated batched msgs/sec drop, percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "tsbench:", err)
		return 1
	}
	if *compareDir != "" {
		if err := compareDirs(*compareDir, *outDir, *regressPct, stdout); err != nil {
			return fail(err)
		}
		return 0
	}
	if *pairs < 1 || *rounds < 1 || *trials < 1 {
		return fail(fmt.Errorf("-pairs, -rounds, and -trials must be positive"))
	}
	if *quick {
		if *pairs > 4 {
			*pairs = 4
		}
		if *rounds > 50 {
			*rounds = 50
		}
		*trials = 1
	}
	selected, err := selectScenarios(*benchFlag)
	if err != nil {
		return fail(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fail(err)
	}
	for _, sc := range selected {
		rep, err := runScenario(sc, *pairs, *rounds, *trials, *seed)
		if err != nil {
			return fail(fmt.Errorf("%s: %w", sc.name, err))
		}
		path := filepath.Join(*outDir, "BENCH_"+sc.name+".json")
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fail(err)
		}
		b = append(b, '\n')
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return fail(err)
		}
		if err := Validate(path); err != nil {
			return fail(err)
		}
		base, batched := rep.Modes["baseline"], rep.Modes["batched"]
		fmt.Fprintf(stdout, "tsbench %-8s %6d msgs  baseline %9.0f msgs/s  batched %9.0f msgs/s  speedup %.2fx  -> %s\n",
			sc.name, rep.Messages, base.MsgsPerSec, batched.MsgsPerSec, rep.Speedup, path)
	}
	return 0
}

func selectScenarios(spec string) ([]scenario, error) {
	if spec == "all" || spec == "" {
		return scenarios, nil
	}
	byName := make(map[string]scenario)
	for _, sc := range scenarios {
		byName[sc.name] = sc
	}
	var out []scenario
	for _, name := range strings.Split(spec, ",") {
		sc, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q (want loop, tcp, journal, load, async, or all)", name)
		}
		out = append(out, sc)
	}
	return out, nil
}

// runScenario measures both arms of one scenario — best throughput of the
// given number of trials each — and cross-checks that every run produced
// identical rendezvous stamps.
func runScenario(sc scenario, pairs, rounds, trials int, seed int64) (*Report, error) {
	if sc.scale > 1 {
		pairs *= sc.scale
	}
	if sc.load {
		return runLoadScenario(sc, pairs, rounds, trials, seed)
	}
	if sc.async {
		return runAsyncScenario(sc, pairs, rounds, trials, seed)
	}
	if sc.journal {
		// The fsync-per-record baseline pays a disk flush per message;
		// a fifth of the rounds keeps the arm honest without making it
		// the whole benchmark's runtime.
		rounds = (rounds + 4) / 5
	}
	rep := &Report{
		Schema: Schema, Name: sc.name, Seed: seed,
		Pairs: pairs, Rounds: rounds, Messages: pairs * rounds,
		Modes: make(map[string]ModeResult),
	}
	// Trials interleave the arms (base, batched, base, batched, ...) so a
	// machine-wide drift — GC debt, page cache, CPU frequency — lands on
	// both arms equally instead of biasing whichever ran last; the best of
	// each arm's trials is reported, the standard way to strip scheduler
	// noise from a short benchmark. Every trial must produce the identical
	// rendezvous logs or the report is refused.
	var base, batched ModeResult
	var logs [][]csp.Record
	for t := 0; t < trials; t++ {
		for _, arm := range []bool{false, true} {
			res, armLogs, err := runMode(sc, pairs, rounds, seed, arm)
			if err != nil {
				return nil, fmt.Errorf("%s trial %d: %w", armName(arm), t, err)
			}
			if logs == nil {
				logs = armLogs
			} else if err := sameLogs(logs, armLogs); err != nil {
				return nil, fmt.Errorf("%s trial %d diverged: %w", armName(arm), t, err)
			}
			if arm {
				if res.MsgsPerSec > batched.MsgsPerSec {
					batched = res
				}
			} else if res.MsgsPerSec > base.MsgsPerSec {
				base = res
			}
		}
	}
	rep.Modes["baseline"] = base
	rep.Modes["batched"] = batched
	if base.MsgsPerSec > 0 {
		rep.Speedup = batched.MsgsPerSec / base.MsgsPerSec
	}
	return rep, nil
}

func armName(batched bool) string {
	if batched {
		return "batched"
	}
	return "baseline"
}

// runMode runs one arm: a 2-node cluster, P pairs ping-ponging R rounds,
// coalescing and journal group commit both keyed on batched.
func runMode(sc scenario, pairs, rounds int, seed int64, batched bool) (ModeResult, [][]csp.Record, error) {
	nprocs := 2 * pairs
	g := graph.New(nprocs)
	for i := 0; i < pairs; i++ {
		g.AddEdge(2*i, 2*i+1)
	}
	dec := decomp.Best(g)
	placement := make([]int, nprocs)
	for p := range placement {
		placement[p] = p % 2
	}

	var cleanup []func()
	defer func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}()

	var transports [2]node.Transport
	if sc.tcp {
		addrs := make([]string, 2)
		var tcps [2]*node.TCPTransport
		for i := range tcps {
			t, err := node.NewTCPTransport("127.0.0.1:0")
			if err != nil {
				return ModeResult{}, nil, err
			}
			tcps[i] = t
			addrs[i] = t.Addr()
		}
		for i, t := range tcps {
			t.SetPeers(addrs)
			transports[i] = t
		}
	} else {
		loop := node.NewLoop(2)
		transports[0], transports[1] = loop.Transport(0), loop.Transport(1)
	}

	var recoveries [2]*node.RecoveryConfig
	if sc.journal {
		dir, err := os.MkdirTemp("", "tsbench-journal-")
		if err != nil {
			return ModeResult{}, nil, err
		}
		cleanup = append(cleanup, func() { _ = os.RemoveAll(dir) })
		for i := range recoveries {
			j, _, err := node.OpenJournal(filepath.Join(dir, fmt.Sprintf("node%d.journal", i)))
			if err != nil {
				return ModeResult{}, nil, err
			}
			j.SetSyncEach(!batched)
			cleanup = append(cleanup, func() { _ = j.Close() })
			recoveries[i] = &node.RecoveryConfig{OnPeerLoss: node.PeerLossAbort, Journal: j}
		}
	}

	o := obs.New() // node 0 carries the sender-side latency histograms
	nodes := make([]*node.Node, 2)
	for i := range nodes {
		cfg := node.Config{
			Node:       i,
			Placement:  placement,
			Dec:        dec,
			NoCoalesce: !batched,
			Recovery:   recoveries[i],
		}
		if i == 0 {
			cfg.Obs = o
		}
		nd, err := node.New(cfg, transports[i])
		if err != nil {
			return ModeResult{}, nil, err
		}
		nodes[i] = nd
		cleanup = append(cleanup, nd.Close)
	}

	// Per-pair internal-event jitter is the seed's contribution to the
	// workload shape; both arms see the identical schedule.
	rng := rand.New(rand.NewSource(seed))
	extras := make([]int, pairs)
	for i := range extras {
		extras[i] = rng.Intn(3)
	}
	programs := [2]map[int]func(*node.Process) error{
		make(map[int]func(*node.Process) error, pairs),
		make(map[int]func(*node.Process) error, pairs),
	}
	for i := 0; i < pairs; i++ {
		sender, receiver, extra := 2*i, 2*i+1, extras[i]
		programs[0][sender] = func(p *node.Process) error {
			for k := 0; k < rounds; k++ {
				if _, err := p.Send(receiver); err != nil {
					return err
				}
			}
			for k := 0; k < extra; k++ {
				p.Internal("bench-tick")
			}
			return nil
		}
		programs[1][receiver] = func(p *node.Process) error {
			for k := 0; k < rounds; k++ {
				if _, err := p.RecvFrom(sender); err != nil {
					return err
				}
			}
			return nil
		}
	}

	infos := make([]*node.RunInfo, 2)
	errs := make([]error, 2)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			infos[i], errs[i] = nodes[i].Run(programs[i])
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	for i, err := range errs {
		if err != nil {
			return ModeResult{}, nil, fmt.Errorf("node %d: %w", i, err)
		}
	}

	messages := pairs * rounds
	wireBytes := 0
	for _, info := range infos {
		_, b := info.Frames.Total()
		wireBytes += b
	}
	latency := o.Metrics.Snapshot().Histograms[obs.MetricSynAckNS]
	res := ModeResult{
		MsgsPerSec:  float64(messages) / elapsed.Seconds(),
		P50NS:       latency.Quantile(0.50),
		P99NS:       latency.Quantile(0.99),
		BytesPerMsg: float64(wireBytes) / float64(messages),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(messages),
		ElapsedNS:   elapsed.Nanoseconds(),
		Messages:    messages,
	}
	for _, info := range infos {
		res.JournalAppends += info.JournalAppends
		res.JournalSyncs += info.JournalSyncs
	}
	logs := make([][]csp.Record, nprocs)
	for _, info := range infos {
		for p := 0; p < nprocs; p++ {
			if l, ok := info.Logs[p]; ok {
				logs[p] = l
			}
		}
	}
	return res, logs, nil
}

// sameLogs checks that two arms produced identical per-process rendezvous
// logs — same operations, same peers, same agreed stamps.
func sameLogs(a, b [][]csp.Record) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d processes", len(a), len(b))
	}
	for p := range a {
		if len(a[p]) != len(b[p]) {
			return fmt.Errorf("process %d: %d vs %d log records", p, len(a[p]), len(b[p]))
		}
		for i := range a[p] {
			x, y := a[p][i], b[p][i]
			if x.Kind != y.Kind || x.Peer != y.Peer || !vector.Eq(x.Stamp, y.Stamp) || fmt.Sprint(x.Note) != fmt.Sprint(y.Note) {
				return fmt.Errorf("process %d record %d: %+v vs %+v", p, i, x, y)
			}
		}
	}
	return nil
}

// Validate re-reads a BENCH_*.json file and checks it is a well-formed
// report with a nonzero throughput in both arms — the contract `make
// bench` and CI rely on.
func Validate(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != Schema {
		return fmt.Errorf("%s: schema %d, want %d", path, rep.Schema, Schema)
	}
	if rep.Messages <= 0 {
		return fmt.Errorf("%s: %d messages, want > 0", path, rep.Messages)
	}
	for _, arm := range []string{"baseline", "batched"} {
		m, ok := rep.Modes[arm]
		if !ok {
			return fmt.Errorf("%s: missing %s mode", path, arm)
		}
		if !(m.MsgsPerSec > 0) {
			return fmt.Errorf("%s: %s msgs_per_sec = %v, want > 0", path, arm, m.MsgsPerSec)
		}
	}
	return nil
}
