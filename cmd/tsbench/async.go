package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/fault"
	"syncstamp/internal/graph"
	"syncstamp/internal/node"
	"syncstamp/internal/obs"
	tssync "syncstamp/internal/sync"
)

// asyncLoss is the faulty arm pair's drop probability, and asyncLossSuffix
// the mode-key suffix its results are filed under.
const (
	asyncLoss       = 0.05
	asyncLossSuffix = "_loss5"
)

// runAsyncScenario measures the rendezvous protocol on the asynchronous
// substrate. Unlike the other scenarios, the two arms compare substrates,
// not coalescing: the baseline arm retransmits on the recovery layer's
// fixed doubling backoff, the batched arm runs the α-synchronizer's
// adaptive RTO (Jacobson estimator, Karn's rule, Eifel detection). Each
// substrate runs over a perfect link and over a 5%-drop link, so the
// report carries four modes — baseline/batched at 0% loss (the compare
// gate's inputs) and baseline_loss5/batched_loss5 — and every run, lossy
// or not, must produce the identical rendezvous stamps.
func runAsyncScenario(sc scenario, pairs, rounds, trials int, seed int64) (*Report, error) {
	// A dropped frame costs at least one retransmission timeout, so the
	// lossy arms pay milliseconds per loss where the clean arms pay
	// microseconds per message; a fifth of the rounds keeps the lossy arms
	// honest without making them the whole benchmark's runtime.
	rounds = (rounds + 4) / 5
	rep := &Report{
		Schema: Schema, Name: sc.name, Seed: seed,
		Pairs: pairs, Rounds: rounds, Messages: pairs * rounds,
		Modes: make(map[string]ModeResult),
	}
	var logs [][]csp.Record
	for _, link := range []struct {
		loss   float64
		suffix string
	}{
		{0, ""},
		{asyncLoss, asyncLossSuffix},
	} {
		var base, batched ModeResult
		for t := 0; t < trials; t++ {
			for _, arm := range []bool{false, true} {
				res, armLogs, err := runAsyncMode(pairs, rounds, seed, arm, link.loss)
				if err != nil {
					return nil, fmt.Errorf("%s%s trial %d: %w", armName(arm), link.suffix, t, err)
				}
				if logs == nil {
					logs = armLogs
				} else if err := sameLogs(logs, armLogs); err != nil {
					return nil, fmt.Errorf("%s%s trial %d diverged: %w", armName(arm), link.suffix, t, err)
				}
				if arm {
					if res.MsgsPerSec > batched.MsgsPerSec {
						batched = res
					}
				} else if res.MsgsPerSec > base.MsgsPerSec {
					base = res
				}
			}
		}
		rep.Modes["baseline"+link.suffix] = base
		rep.Modes["batched"+link.suffix] = batched
	}
	if base := rep.Modes["baseline"]; base.MsgsPerSec > 0 {
		rep.Speedup = rep.Modes["batched"].MsgsPerSec / base.MsgsPerSec
	}
	return rep, nil
}

// runAsyncMode runs one arm of the async scenario: the usual 2-node pair
// workload over the Loop fabric, with the link wrapped in the fault
// injector when loss is nonzero. async selects the substrate — false is
// the fixed-backoff recovery layer, true the adaptive α-synchronizer.
// Coalescing and the journal are held at their defaults in both arms so
// the retransmission strategy is the only variable.
func runAsyncMode(pairs, rounds int, seed int64, async bool, loss float64) (ModeResult, [][]csp.Record, error) {
	nprocs := 2 * pairs
	g := graph.New(nprocs)
	for i := 0; i < pairs; i++ {
		g.AddEdge(2*i, 2*i+1)
	}
	dec := decomp.Best(g)
	placement := make([]int, nprocs)
	for p := range placement {
		placement[p] = p % 2
	}

	var plan *fault.Plan
	if loss > 0 {
		plan = &fault.Plan{
			Seed:  seed,
			Links: []fault.LinkFault{{From: -1, To: -1, Drop: loss}},
		}
		if err := plan.Validate(); err != nil {
			return ModeResult{}, nil, err
		}
	}
	loop := node.NewLoop(2)
	var transports [2]node.Transport
	for i := range transports {
		if plan != nil {
			transports[i] = fault.New(loop.Transport(i), plan, i)
		} else {
			transports[i] = loop.Transport(i)
		}
	}

	o := obs.New() // node 0 carries the sender-side latency histograms
	nodes := make([]*node.Node, 2)
	var cleanup []func()
	defer func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}()
	for i := range nodes {
		rec := &node.RecoveryConfig{
			OnPeerLoss:      node.PeerLossWait,
			RetransmitMin:   2 * time.Millisecond,
			RetransmitMax:   20 * time.Millisecond,
			ReconnectWindow: 10 * time.Second,
		}
		if async {
			rec.Async = &tssync.Config{
				RTTInit: 5 * time.Millisecond,
				RTOMin:  time.Millisecond,
				RTOMax:  100 * time.Millisecond,
				Seed:    seed,
			}
		}
		cfg := node.Config{
			Node:      i,
			Placement: placement,
			Dec:       dec,
			Recovery:  rec,
		}
		if i == 0 {
			cfg.Obs = o
		}
		nd, err := node.New(cfg, transports[i])
		if err != nil {
			return ModeResult{}, nil, err
		}
		nodes[i] = nd
		cleanup = append(cleanup, nd.Close)
	}

	// The identical workload shape as the pair scenarios: per-pair
	// internal-event jitter from the seed, the same schedule in every arm.
	rng := rand.New(rand.NewSource(seed))
	extras := make([]int, pairs)
	for i := range extras {
		extras[i] = rng.Intn(3)
	}
	programs := [2]map[int]func(*node.Process) error{
		make(map[int]func(*node.Process) error, pairs),
		make(map[int]func(*node.Process) error, pairs),
	}
	for i := 0; i < pairs; i++ {
		sender, receiver, extra := 2*i, 2*i+1, extras[i]
		programs[0][sender] = func(p *node.Process) error {
			for k := 0; k < rounds; k++ {
				if _, err := p.Send(receiver); err != nil {
					return err
				}
			}
			for k := 0; k < extra; k++ {
				p.Internal("bench-tick")
			}
			return nil
		}
		programs[1][receiver] = func(p *node.Process) error {
			for k := 0; k < rounds; k++ {
				if _, err := p.RecvFrom(sender); err != nil {
					return err
				}
			}
			return nil
		}
	}

	infos := make([]*node.RunInfo, 2)
	errs := make([]error, 2)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			infos[i], errs[i] = nodes[i].Run(programs[i])
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	for i, err := range errs {
		if err != nil {
			return ModeResult{}, nil, fmt.Errorf("node %d: %w", i, err)
		}
	}

	messages := pairs * rounds
	wireBytes := 0
	for _, info := range infos {
		_, b := info.Frames.Total()
		wireBytes += b
	}
	latency := o.Metrics.Snapshot().Histograms[obs.MetricSynAckNS]
	res := ModeResult{
		MsgsPerSec:  float64(messages) / elapsed.Seconds(),
		P50NS:       latency.Quantile(0.50),
		P99NS:       latency.Quantile(0.99),
		BytesPerMsg: float64(wireBytes) / float64(messages),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(messages),
		ElapsedNS:   elapsed.Nanoseconds(),
		Messages:    messages,
	}
	for _, info := range infos {
		res.Retransmits += info.Retransmits
		res.SpuriousRetransmits += info.Spurious
	}
	logs := make([][]csp.Record, nprocs)
	for _, info := range infos {
		for p := 0; p < nprocs; p++ {
			if l, ok := info.Logs[p]; ok {
				logs[p] = l
			}
		}
	}
	return res, logs, nil
}
